#include "rl/agent.hpp"

#include <stdexcept>

namespace oselm::rl {

void OsElmQBackend::predict_actions_multi(const linalg::MatD& states,
                                          const linalg::VecD& action_codes,
                                          QNetwork which,
                                          linalg::MatD& q_out) {
  if (states.cols() + 1 != input_dim()) {
    throw std::invalid_argument(
        "OsElmQBackend::predict_actions_multi: state width");
  }
  if (q_out.rows() != states.rows() || q_out.cols() != action_codes.size()) {
    throw std::invalid_argument(
        "OsElmQBackend::predict_actions_multi: q_out shape");
  }
  if (states.rows() == 0) return;  // no evaluations => no charge
  linalg::VecD state(states.cols());
  linalg::VecD q_row(action_codes.size());
  for (std::size_t s = 0; s < states.rows(); ++s) {
    const double* row = states.row_ptr(s);
    for (std::size_t i = 0; i < state.size(); ++i) state[i] = row[i];
    predict_actions(state, action_codes, which, q_row);
    q_out.set_row(s, q_row);
  }
}

QNetState OsElmQBackend::export_state() const {
  throw std::logic_error(
      "OsElmQBackend::export_state: backend does not support state sync "
      "(check supports_state_sync())");
}

void OsElmQBackend::import_state(const QNetState&) {
  throw std::logic_error(
      "OsElmQBackend::import_state: backend does not support state sync "
      "(check supports_state_sync())");
}

}  // namespace oselm::rl
