// OS-ELM Q-Network — Algorithm 1 with the OS-ELM-specific branches
// (lines 20-24): the paper's primary contribution (§3.2), generic over
// the arithmetic backend so designs (2)-(5) [software] and (7) [FPGA
// functional model] share one implementation of the control flow.
#pragma once

#include <vector>

#include "rl/agent.hpp"
#include "rl/policy.hpp"
#include "rl/sa_encoding.hpp"
#include "util/rng.hpp"

namespace oselm::rl {

struct OsElmQAgentConfig {
  double gamma = 0.99;              ///< discount rate
  double epsilon_greedy = 0.7;      ///< epsilon_1: P(act greedily)
  double update_probability = 0.5;  ///< epsilon_2: P(seq update per step)
  std::size_t target_sync_interval = 2;  ///< UPDATE_STEP (episodes)
  bool clip_targets = true;         ///< Q-value clipping (§3.1)
  double clip_min = -1.0;
  double clip_max = 1.0;
  bool random_update = true;        ///< §3.2 (false: update every step)

  void validate() const;
};

class OsElmQAgent final : public Agent {
 public:
  /// `backend` provides the arithmetic; `model` the (s, a) encoding;
  /// `seed` drives exploration and the random-update coin flips. The
  /// agent accounts time through the backend's TimeLedger (inject a
  /// shared ledger at backend construction to aggregate across agents).
  OsElmQAgent(OsElmQBackendPtr backend, SimplifiedOutputModel model,
              OsElmQAgentConfig config, std::uint64_t seed,
              std::string_view display_name = "OS-ELM");

  std::size_t act(const linalg::VecD& state) override;
  void observe(const nn::Transition& transition) override;
  void episode_end(std::size_t episodes_since_reset) override;
  void reset_weights() override;
  [[nodiscard]] bool supports_weight_reset() const override { return true; }
  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] const util::OpBreakdown& breakdown() const override {
    return backend_->ledger().breakdown();
  }

  /// Greedy action under theta_1 (no exploration); used by evaluation.
  /// One batched predict_actions call; ties break toward the lowest
  /// action index, matching the historical per-action argmax loop.
  std::size_t greedy_action(const linalg::VecD& state);

  /// Q_theta1(s, a) (prediction time charged as usual).
  double q_value(const linalg::VecD& state, std::size_t action);

  [[nodiscard]] const OsElmQBackend& backend() const noexcept {
    return *backend_;
  }
  [[nodiscard]] std::size_t buffered_samples() const noexcept {
    return buffer_.size();
  }
  [[nodiscard]] std::size_t seq_updates() const noexcept {
    return seq_updates_;
  }
  [[nodiscard]] std::size_t init_trainings() const noexcept {
    return init_trainings_;
  }

 private:
  /// r + (1 - d) * gamma * max_a Q_theta2(s', a), optionally clipped;
  /// target-network prediction time is routed to `charge_to` via a
  /// TimeLedger::PredictScope.
  double td_target(const nn::Transition& transition,
                   util::OpCategory charge_to);

  /// Runs the initial training on the filled buffer (lines 17-19).
  void run_init_train();

  OsElmQBackendPtr backend_;
  SimplifiedOutputModel model_;
  OsElmQAgentConfig config_;
  GreedyWithProbabilityPolicy policy_;
  util::Rng rng_;
  std::string name_;

  std::vector<nn::Transition> buffer_;  ///< buffer D, capacity = N-tilde
  linalg::VecD scratch_sa_;     ///< reused encode buffer (no hot-loop allocs)
  linalg::VecD action_codes_;   ///< precomputed codes for predict_actions
  linalg::VecD q_ws_;           ///< per-action Q workspace (no allocs)
  std::size_t seq_updates_ = 0;
  std::size_t init_trainings_ = 0;
};

}  // namespace oselm::rl
