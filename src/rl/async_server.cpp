#include "rl/async_server.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "env/registry.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rl/policy.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace oselm::rl {

using Clock = std::chrono::steady_clock;

namespace {

/// Process-wide serving metrics (totals across every AsyncQServer in the
/// process — router replicas included). Handles are resolved once; every
/// update afterwards is a single relaxed atomic op.
struct AsyncMetrics {
  obs::Counter& steps;
  obs::Counter& batches;
  obs::Counter& batch_rows;
  obs::Counter& train_updates;
  obs::Counter& init_trains;
  obs::Counter& sessions_admitted;
  obs::Counter& sessions_retired;
  obs::Counter& admission_rejections;
  obs::Counter& backend_failures;
  obs::Histogram& batch_linger_us;

  AsyncMetrics()
      : steps(obs::MetricsRegistry::global().counter(
            "oselm_async_steps_total")),
        batches(obs::MetricsRegistry::global().counter(
            "oselm_async_batches_total")),
        batch_rows(obs::MetricsRegistry::global().counter(
            "oselm_async_batch_rows_total")),
        train_updates(obs::MetricsRegistry::global().counter(
            "oselm_async_train_updates_total")),
        init_trains(obs::MetricsRegistry::global().counter(
            "oselm_async_init_trains_total")),
        sessions_admitted(obs::MetricsRegistry::global().counter(
            "oselm_async_sessions_admitted_total")),
        sessions_retired(obs::MetricsRegistry::global().counter(
            "oselm_async_sessions_retired_total")),
        admission_rejections(obs::MetricsRegistry::global().counter(
            "oselm_async_admission_rejections_total")),
        backend_failures(obs::MetricsRegistry::global().counter(
            "oselm_async_backend_failures_total")),
        batch_linger_us(obs::MetricsRegistry::global().histogram(
            "oselm_async_batch_linger_us")) {}
};

AsyncMetrics& async_metrics() {
  static AsyncMetrics metrics;
  return metrics;
}

}  // namespace

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

struct AsyncQServer::Session {
  AsyncSessionSpec spec;
  env::EnvironmentPtr env;
  GreedyWithProbabilityPolicy policy;
  util::Rng rng;
  util::MovingAverage window;
  AsyncSessionResult result;
  std::vector<nn::Transition> buffer;  ///< buffer D (train mode)
  double env_seconds = 0.0;

  // Episode-transient state.
  linalg::VecD state;
  std::size_t episode = 0;
  std::size_t steps = 0;
  double episode_return = 0.0;
  std::size_t episodes_since_reset = 0;

  // Step-transient state (stable while the session is suspended; the
  // batch thread reads/writes it through the queue's synchronization).
  std::size_t action = 0;
  nn::Transition transition;
  linalg::VecD sa;  ///< encoded (state, action) row for seq_train
  double pending_value = 0.0;  ///< batch thread -> worker (best next Q)
  Clock::time_point step_start{};
  Clock::time_point admitted_at{};
  Phase phase = Phase::kBeginEpisode;

  Session(AsyncSessionSpec s, env::EnvironmentPtr e, std::size_t actions,
          std::size_t input_dim)
      : spec(std::move(s)),
        env(std::move(e)),
        policy(spec.session.agent.epsilon_greedy, actions),
        rng(spec.session.agent_seed),
        window(spec.session.trainer.solved_window),
        sa(input_dim, 0.0) {}
};

// ---------------------------------------------------------------------------
// Construction / lifecycle
// ---------------------------------------------------------------------------

AsyncQServer::AsyncQServer(OsElmQBackendPtr backend,
                           SimplifiedOutputModel model,
                           AsyncQServerConfig config)
    : backend_(std::move(backend)),
      model_(model),
      config_(config),
      action_codes_(model.action_count(), 0.0),
      q_ws_(model.action_count(), 0.0),
      scratch_sa_(model.input_dim(), 0.0) {
  if (!backend_) throw std::invalid_argument("AsyncQServer: null backend");
  if (backend_->input_dim() != model_.input_dim()) {
    throw std::invalid_argument(
        "AsyncQServer: backend input width != encoder width");
  }
  if (config_.max_live_sessions == 0) {
    throw std::invalid_argument("AsyncQServer: max_live_sessions == 0");
  }
  if (config_.max_batch == 0) config_.max_batch = 1;
  if (config_.ready_queue_capacity == 0) {
    config_.ready_queue_capacity = config_.max_live_sessions;
  }
  if (config_.worker_threads == 0) {
    config_.worker_threads =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  for (std::size_t a = 0; a < model_.action_count(); ++a) {
    action_codes_[a] = model_.action_code(a);
  }
  backend_initialized_.store(backend_->initialized(),
                             std::memory_order_release);
  states_by_rows_.resize(config_.max_batch + 1);
  q_by_rows_.resize(config_.max_batch + 1);
  // Ledger ownership transfers to the batch thread: whoever charged this
  // backend's account before (an agent that pre-trained the weights, a
  // bench's setup phase) is quiescent once it hands the backend over.
  backend_->ledger().release_writer();
  started_at_us_ = obs::Tracer::now_us();
  pool_ = std::make_unique<util::ThreadPool>(config_.worker_threads);
  batch_thread_ = std::thread([this] { batch_loop(); });
}

AsyncQServer::~AsyncQServer() { stop(); }

void AsyncQServer::stop() {
  const std::scoped_lock stop_lock(stop_mutex_);
  stopping_.store(true, std::memory_order_release);
  {
    // Live sessions retire at their next step boundary; the batch thread
    // keeps serving their in-flight requests until every one is gone.
    std::unique_lock lk(sessions_mutex_);
    retire_cv_.wait(lk, [this] { return live_.empty(); });
  }
  {
    const std::scoped_lock lk(queue_mutex_);
    if (batch_stop_) return;  // a previous stop() already joined
    batch_stop_ = true;
  }
  queue_cv_.notify_all();
  space_cv_.notify_all();
  if (batch_thread_.joinable()) batch_thread_.join();
  // The batch thread is gone; the ledger's next writer is whichever
  // thread touches the quiescent backend next (inline run_exclusive, an
  // agent resuming training, a bench reading then reusing it).
  backend_->ledger().release_writer();
  batch_affinity_.release();
  // Surface the quiescent ledger's charge categories as process-wide
  // gauges (cumulative seconds across every server stopped so far).
  const util::OpBreakdown& breakdown = backend_->ledger().breakdown();
  for (std::size_t c = 0; c < util::kOpCategoryCount; ++c) {
    const auto category = static_cast<util::OpCategory>(c);
    const double seconds = breakdown.get(category);
    if (seconds == 0.0) continue;
    obs::MetricsRegistry::global()
        .gauge("oselm_ledger_" +
               std::string(util::op_category_name(category)) + "_seconds")
        .add(seconds);
  }
}

namespace {

/// Human-readable identity of a not-yet-admitted session for admission
/// errors: the same env#seed#seed derivation the router uses for its
/// default affinity keys, so logs from both tiers name sessions alike.
std::string session_descriptor(const AsyncSessionSpec& spec) {
  return spec.session.env_id + "#" + std::to_string(spec.session.env_seed) +
         "#" + std::to_string(spec.session.agent_seed);
}

}  // namespace

std::size_t AsyncQServer::add_session(const AsyncSessionSpec& spec) {
  spec.session.agent.validate();
  if (spec.session.trainer.solved_window == 0) {
    throw std::invalid_argument("AsyncQServer: solved_window == 0");
  }
  env::EnvironmentPtr environment =
      spec.env_factory
          ? spec.env_factory(spec.session.env_seed)
          : env::make_environment(spec.session.env_id,
                                  spec.session.env_seed);
  if (!environment) {
    throw std::invalid_argument(
        "AsyncQServer::add_session: env_factory returned null");
  }
  if (environment->observation_space().dimensions() != model_.state_dim() ||
      environment->action_space().n != model_.action_count()) {
    throw std::invalid_argument(
        "AsyncQServer::add_session: environment '" + spec.session.env_id +
        "' does not match the server's (state, action) encoding");
  }

  Session* raw = nullptr;
  std::size_t id = 0;
  {
    const std::scoped_lock lk(sessions_mutex_);
    if (stopping_.load(std::memory_order_acquire)) {
      stopping_rejections_.fetch_add(1, std::memory_order_relaxed);
      throw AdmissionError(AdmissionRejectReason::kStopping,
                           "AsyncQServer::add_session",
                           session_descriptor(spec), "server is stopping");
    }
    if (live_.size() >= config_.max_live_sessions) {
      admission_rejections_.fetch_add(1, std::memory_order_relaxed);
      async_metrics().admission_rejections.add();
      OSELM_TRACE_INSTANT("session", "admission_rejected");
      throw AdmissionError(
          AdmissionRejectReason::kCapacity, "AsyncQServer::add_session",
          session_descriptor(spec),
          "live-session cap (" + std::to_string(config_.max_live_sessions) +
              ") reached; retry after a session retires");
    }
    id = next_id_++;
    auto session = std::make_unique<Session>(
        spec, std::move(environment), model_.action_count(),
        model_.input_dim());
    session->result.id = id;
    session->result.mode = spec.mode;
    session->admitted_at = Clock::now();
    session->buffer.reserve(backend_->hidden_units());
    raw = session.get();
    live_.emplace(id, std::move(session));
    live_count_.store(live_.size(), std::memory_order_relaxed);
  }
  sessions_admitted_.fetch_add(1, std::memory_order_relaxed);
  async_metrics().sessions_admitted.add();
  OSELM_TRACE_INSTANT("session", "admit");
  pool_->submit([this, raw] { advance(raw); });
  return id;
}

AsyncSessionResult AsyncQServer::wait(std::size_t session_id) {
  std::unique_lock lk(sessions_mutex_);
  if (session_id >= next_id_) {
    throw std::invalid_argument("AsyncQServer::wait: unknown session id " +
                                std::to_string(session_id));
  }
  if (claimed_.contains(session_id)) {
    throw std::logic_error("AsyncQServer::wait: result of session " +
                           std::to_string(session_id) +
                           " was already claimed");
  }
  retire_cv_.wait(lk, [&] { return results_.contains(session_id); });
  // Deliver-once: the result moves out so a server that admits and
  // retires sessions indefinitely does not accumulate them forever.
  const auto it = results_.find(session_id);
  AsyncSessionResult out = std::move(it->second);
  results_.erase(it);
  claimed_.insert(session_id);
  return out;
}

std::vector<AsyncSessionResult> AsyncQServer::drain() {
  std::unique_lock lk(sessions_mutex_);
  retire_cv_.wait(lk, [this] { return live_.empty(); });
  std::vector<AsyncSessionResult> out;
  out.reserve(results_.size());
  for (auto& [id, result] : results_) {
    claimed_.insert(id);
    out.push_back(std::move(result));
  }
  results_.clear();
  return out;
}

std::size_t AsyncQServer::live_sessions() const {
  const std::scoped_lock lk(sessions_mutex_);
  return live_.size();
}

AsyncServerStats AsyncQServer::stats() const {
  AsyncServerStats out;
  out.steps = steps_.load(std::memory_order_relaxed);
  out.episodes = episodes_.load(std::memory_order_relaxed);
  out.batches = batches_.load(std::memory_order_relaxed);
  out.batch_rows = batch_rows_.load(std::memory_order_relaxed);
  out.train_updates = train_updates_.load(std::memory_order_relaxed);
  out.init_trains = init_trains_.load(std::memory_order_relaxed);
  out.sessions_admitted = sessions_admitted_.load(std::memory_order_relaxed);
  out.sessions_retired = sessions_retired_.load(std::memory_order_relaxed);
  out.admission_rejections =
      admission_rejections_.load(std::memory_order_relaxed);
  out.stopping_rejections =
      stopping_rejections_.load(std::memory_order_relaxed);
  out.env_failures = env_failures_.load(std::memory_order_relaxed);
  out.backend_failures = backend_failures_.load(std::memory_order_relaxed);
  out.captured_at_us = obs::wall_clock_us();
  out.uptime_us = obs::Tracer::now_us() - started_at_us_;
  {
    const std::scoped_lock lk(stats_mutex_);
    out.step_latency_us = retired_latency_;
    out.batch_rows_hist = batch_rows_hist_;
  }
  return out;
}

void AsyncServerStats::merge(const AsyncServerStats& other) {
  steps += other.steps;
  episodes += other.episodes;
  batches += other.batches;
  batch_rows += other.batch_rows;
  train_updates += other.train_updates;
  init_trains += other.init_trains;
  sessions_admitted += other.sessions_admitted;
  sessions_retired += other.sessions_retired;
  admission_rejections += other.admission_rejections;
  stopping_rejections += other.stopping_rejections;
  env_failures += other.env_failures;
  backend_failures += other.backend_failures;
  captured_at_us = std::max(captured_at_us, other.captured_at_us);
  uptime_us = std::max(uptime_us, other.uptime_us);
  step_latency_us.merge(other.step_latency_us);
  batch_rows_hist.merge(other.batch_rows_hist);
}

std::string AsyncServerStats::to_json() const {
  char head[768];
  std::snprintf(
      head, sizeof(head),
      "{\n"
      "  \"steps\": %llu, \"episodes\": %llu,\n"
      "  \"batches\": %llu, \"batch_rows\": %llu, "
      "\"mean_batch_rows\": %.3f,\n"
      "  \"train_updates\": %llu, \"init_trains\": %llu,\n"
      "  \"sessions_admitted\": %llu, \"sessions_retired\": %llu, "
      "\"admission_rejections\": %llu, \"stopping_rejections\": %llu,\n"
      "  \"env_failures\": %llu, \"backend_failures\": %llu,\n"
      "  \"captured_at_us\": %llu, \"uptime_us\": %llu,\n",
      static_cast<unsigned long long>(steps),
      static_cast<unsigned long long>(episodes),
      static_cast<unsigned long long>(batches),
      static_cast<unsigned long long>(batch_rows), mean_batch_rows(),
      static_cast<unsigned long long>(train_updates),
      static_cast<unsigned long long>(init_trains),
      static_cast<unsigned long long>(sessions_admitted),
      static_cast<unsigned long long>(sessions_retired),
      static_cast<unsigned long long>(admission_rejections),
      static_cast<unsigned long long>(stopping_rejections),
      static_cast<unsigned long long>(env_failures),
      static_cast<unsigned long long>(backend_failures),
      static_cast<unsigned long long>(captured_at_us),
      static_cast<unsigned long long>(uptime_us));
  return std::string(head) +
         "  \"step_latency_us\": " + step_latency_us.to_json() + ",\n" +
         "  \"batch_rows_hist\": " + batch_rows_hist.to_json() + "\n}";
}

// ---------------------------------------------------------------------------
// Worker side — the per-session state machine
// ---------------------------------------------------------------------------

void AsyncQServer::advance(Session* s) {
  if (obs::Tracer::enabled()) {
    // Label each worker lane once, lazily — names show up as Perfetto
    // track titles next to the batch thread's.
    thread_local bool lane_named = false;
    if (!lane_named) {
      obs::Tracer::set_thread_name("worker");
      lane_named = true;
    }
  }
  OSELM_TRACE_SPAN("worker", "session_slice");
  try {
    run_session(*s);
  } catch (const std::exception& e) {
    const char* what = e.what();
    retire(s, SessionEndCause::kEnvError,
           (what != nullptr && what[0] != '\0') ? what
                                                : "unknown session failure");
  } catch (...) {
    retire(s, SessionEndCause::kEnvError, "unknown session failure");
  }
}

void AsyncQServer::begin_episode_env(Session& s) {
  ++s.episode;
  s.steps = 0;
  s.episode_return = 0.0;
  util::WallTimer env_timer;
  s.state = s.env->reset();
  s.env_seconds += env_timer.seconds();
}

void AsyncQServer::run_session(Session& s) {
  const OsElmQAgentConfig& agent = s.spec.session.agent;
  const TrainerConfig& trainer = s.spec.session.trainer;
  const bool training = s.spec.mode == AsyncSessionMode::kTrain;
  for (;;) {
    switch (s.phase) {
      case Phase::kBeginEpisode: {
        if (stopping_.load(std::memory_order_acquire)) {
          retire(&s, SessionEndCause::kStopped, {});
          return;
        }
        if (trainer.max_episodes == 0) {
          // Empty budget completes immediately, like QServer.
          retire(&s, SessionEndCause::kCompleted, {});
          return;
        }
        // §4.3 reset rule, identical to QServer::begin_episode; the
        // re-randomization itself must run on the batch thread.
        if (training && !s.result.train.solved &&
            trainer.reset_interval != 0 &&
            s.episodes_since_reset >= trainer.reset_interval) {
          suspend(s, RequestKind::kReset, Phase::kAfterReset);
          return;
        }
        begin_episode_env(s);
        s.phase = Phase::kChooseAction;
        break;
      }
      case Phase::kAfterReset: {
        s.buffer.clear();
        s.buffer.reserve(backend_->hidden_units());
        s.window.reset();
        s.episodes_since_reset = 0;
        ++s.result.train.resets;
        begin_episode_env(s);
        s.phase = Phase::kChooseAction;
        break;
      }
      case Phase::kChooseAction: {
        if (stopping_.load(std::memory_order_acquire)) {
          retire(&s, SessionEndCause::kStopped, {});
          return;
        }
        s.step_start = Clock::now();
        if (s.policy.should_act_greedily(s.rng)) {
          suspend(s, RequestKind::kGreedyEval, Phase::kStepEnv);
          return;
        }
        s.action = s.policy.random_action(s.rng);
        s.phase = Phase::kStepEnv;
        break;
      }
      case Phase::kStepEnv: {
        env::StepResult step;
        {
          util::WallTimer env_timer;
          step = s.env->step(s.action);
          s.env_seconds += env_timer.seconds();
        }
        ++s.steps;
        s.episode_return += step.reward;
        s.transition = nn::Transition{s.state, s.action, step.reward,
                                      step.observation, step.done()};
        s.state = step.observation;
        if (!training) {
          s.phase = Phase::kFinishStep;
          break;
        }
        // Observe (Algorithm 1 Store + Update), per-session control flow
        // identical to the lockstep QServer's Phase C.
        model_.encode_into(s.transition.state, s.action, s.sa);
        if (!backend_initialized_.load(std::memory_order_acquire)) {
          s.buffer.push_back(s.transition);
          if (s.buffer.size() >= backend_->hidden_units()) {
            suspend(s, RequestKind::kInitTrain, Phase::kFinishStep);
            return;
          }
          s.phase = Phase::kFinishStep;
          break;
        }
        if (!s.buffer.empty()) {
          // Lost the init-train race to a co-tenant: the part-filled
          // chunk is stale (recorded under pre-init weights) — drop it.
          s.buffer.clear();
          s.buffer.shrink_to_fit();
        }
        if (agent.random_update &&
            !s.rng.bernoulli(agent.update_probability)) {
          s.phase = Phase::kFinishStep;
          break;
        }
        suspend(s,
                s.transition.done ? RequestKind::kTrainOnly
                                  : RequestKind::kTdEvalTrain,
                Phase::kFinishStep);
        return;
      }
      case Phase::kFinishStep: {
        s.result.step_latency_us.record(
            std::chrono::duration<double, std::micro>(Clock::now() -
                                                      s.step_start)
                .count());
        steps_.fetch_add(1, std::memory_order_relaxed);
        async_metrics().steps.add();
        const bool capped = trainer.episode_step_cap != 0 &&
                            s.steps >= trainer.episode_step_cap;
        if (!s.transition.done && !capped) {
          s.phase = Phase::kChooseAction;
          break;
        }
        ++s.episodes_since_reset;
        // UPDATE_STEP target sync (Algorithm 1 lines 23-24), keyed on the
        // episodes-since-reset count exactly like Agent::episode_end.
        if (training &&
            s.episodes_since_reset % agent.target_sync_interval == 0) {
          suspend(s, RequestKind::kSyncTarget, Phase::kEpisodeEnd);
          return;
        }
        s.phase = Phase::kEpisodeEnd;
        break;
      }
      case Phase::kEpisodeEnd: {
        episodes_.fetch_add(1, std::memory_order_relaxed);
        TrainResult& tr = s.result.train;
        tr.episode_steps.push_back(static_cast<double>(s.steps));
        tr.episode_returns.push_back(s.episode_return);
        tr.total_steps += s.steps;
        tr.episodes = s.episode;
        s.window.add(static_cast<double>(s.steps));
        if (!tr.solved && s.window.full() &&
            s.window.value() >= trainer.solved_threshold) {
          tr.solved = true;
          tr.first_solved_episode = s.episode;
          if (trainer.stop_on_solved) {
            retire(&s, SessionEndCause::kCompleted, {});
            return;
          }
        }
        if (s.episode >= trainer.max_episodes) {
          retire(&s, SessionEndCause::kCompleted, {});
          return;
        }
        s.phase = Phase::kBeginEpisode;
        break;
      }
    }
  }
}

void AsyncQServer::suspend(Session& s, RequestKind kind, Phase resume) {
  // Session state-machine contract: each request kind resumes at exactly
  // one phase (the worker-side switch relies on the pairing to route the
  // batch thread's answer — an action, a TD value, an init ack).
  switch (kind) {
    case RequestKind::kGreedyEval:
      OSELM_DCHECK(resume == Phase::kStepEnv);
      break;
    case RequestKind::kTdEvalTrain:
    case RequestKind::kTrainOnly:
    case RequestKind::kInitTrain:
      OSELM_DCHECK(resume == Phase::kFinishStep);
      break;
    case RequestKind::kSyncTarget:
      OSELM_DCHECK(resume == Phase::kEpisodeEnd);
      break;
    case RequestKind::kReset:
      OSELM_DCHECK(resume == Phase::kAfterReset);
      break;
  }
  s.phase = resume;
  OSELM_TRACE_INSTANT("session", "suspend");
  std::unique_lock lk(queue_mutex_);
  // Backpressure: block until the bounded ready queue has room. The batch
  // thread is the only consumer and never blocks on this queue, so space
  // always appears.
  space_cv_.wait(lk, [this] {
    return ready_.size() < config_.ready_queue_capacity;
  });
  if (ready_.empty() &&
      (obs::Tracer::enabled() || obs::timing_enabled())) {
    // Queue goes empty -> non-empty: the coalescing linger for the next
    // batch starts now. Clock read gated so default-off serving stays
    // clock-free on this seam.
    pending_since_us_ = obs::Tracer::now_us();
  }
  ready_.emplace_back(&s, kind);
  OSELM_DCHECK_LE(ready_.size(), config_.ready_queue_capacity);
  lk.unlock();
  queue_cv_.notify_one();
  // NOTE: the session may already be running on another worker by the
  // time push returns — no member of `s` may be touched past this point.
}

void AsyncQServer::retire(Session* s, SessionEndCause cause,
                          std::string error) {
  AsyncSessionResult result = std::move(s->result);
  result.cause = cause;
  result.completed = cause == SessionEndCause::kCompleted;
  result.failed = !error.empty();
  result.error = std::move(error);
  result.served_by = config_.name;
  result.train.wall_seconds =
      std::chrono::duration<double>(Clock::now() - s->admitted_at).count();
  result.train.breakdown = util::OpBreakdown{};
  result.train.breakdown.add(util::OpCategory::kEnvironment,
                             s->env_seconds);
  {
    const std::scoped_lock lk(stats_mutex_);
    retired_latency_.merge(result.step_latency_us);
  }
  if (cause == SessionEndCause::kEnvError) {
    env_failures_.fetch_add(1, std::memory_order_relaxed);
  }
  sessions_retired_.fetch_add(1, std::memory_order_relaxed);
  async_metrics().sessions_retired.add();
  OSELM_TRACE_INSTANT("session", "retire");
  const std::size_t id = result.id;
  // Callback mode (the router's replica seam): deliver the result with
  // NO server locks held — the callback re-places rescued sessions onto
  // other servers, which takes their locks. The session is erased from
  // live_ only AFTER the callback returns, so stop()'s live_.empty()
  // wait cannot complete (and tear the owner down) mid-delivery.
  if (config_.on_retire) {
    config_.on_retire(std::move(result));
    const std::scoped_lock lk(sessions_mutex_);
    live_.erase(id);  // destroys *s — it owns no further control flow
    live_count_.store(live_.size(), std::memory_order_relaxed);
    retire_cv_.notify_all();
    return;
  }
  {
    const std::scoped_lock lk(sessions_mutex_);
    results_.emplace(id, std::move(result));
    live_.erase(id);  // destroys *s — it owns no further control flow
    live_count_.store(live_.size(), std::memory_order_relaxed);
    // Notify under the lock: a waiter (stop()/wait()/drain()) may destroy
    // the server the moment its predicate holds, so the condition
    // variable must not be touched after the mutex is released.
    retire_cv_.notify_all();
  }
}

// ---------------------------------------------------------------------------
// Batch thread — the only owner of the shared backend
// ---------------------------------------------------------------------------

void AsyncQServer::batch_loop() {
  batch_affinity_.bind();  // this thread owns backend_ until stop()
  obs::Tracer::set_thread_name((config_.name + "/batch").c_str());
  std::vector<Request> drained;
  std::vector<ExclusiveTask> exclusive;
  for (;;) {
    drained.clear();
    exclusive.clear();
    {
      std::unique_lock lk(queue_mutex_);
      queue_cv_.wait(lk, [this] {
        return batch_stop_ || !ready_.empty() || !exclusive_.empty();
      });
      if (batch_stop_ && ready_.empty() && exclusive_.empty()) return;
      // Exclusive tasks (run_exclusive) jump ahead of batching: they are
      // rare (sync rounds, priming) and their callers block on them.
      if (!exclusive_.empty()) {
        exclusive.assign(std::make_move_iterator(exclusive_.begin()),
                         std::make_move_iterator(exclusive_.end()));
        exclusive_.clear();
      }
      if (!ready_.empty()) {
        // A batch is "full" at max_batch rows — or as soon as no further
        // request can arrive before a drain: every live session already
        // has one pending (solo sessions never pay the linger), or the
        // bounded queue is at capacity and workers are blocked on it.
        const auto batch_full = [this] {
          return ready_.size() >= config_.max_batch ||
                 ready_.size() >=
                     live_count_.load(std::memory_order_relaxed) ||
                 ready_.size() >= config_.ready_queue_capacity;
        };
        if (config_.max_wait_us > 0 && !batch_full() && exclusive.empty()) {
          // Continuous-batching linger: give co-tenants max_wait_us to
          // join this batch, then serve whatever is pending.
          const auto deadline =
              Clock::now() + std::chrono::microseconds(config_.max_wait_us);
          queue_cv_.wait_until(lk, deadline, [&] {
            return batch_stop_ || batch_full();
          });
        }
        // Bounded-queue invariant: workers' backpressure wait keeps the
        // ready queue within its configured capacity at every drain.
        OSELM_DCHECK_LE(ready_.size(), config_.ready_queue_capacity);
        const std::size_t take =
            std::min(ready_.size(), config_.max_batch);
        drained.assign(ready_.begin(),
                       ready_.begin() + static_cast<std::ptrdiff_t>(take));
        ready_.erase(ready_.begin(),
                     ready_.begin() + static_cast<std::ptrdiff_t>(take));
        if (pending_since_us_ != 0) {
          // Achieved batch-assembly linger: first enqueue -> this drain.
          const std::uint64_t now = obs::Tracer::now_us();
          async_metrics().batch_linger_us.record(
              static_cast<double>(now - pending_since_us_));
          // Requests left behind re-arm; linger restarts at this drain.
          pending_since_us_ = ready_.empty() ? 0 : now;
        }
      }
    }
    space_cv_.notify_all();
    for (ExclusiveTask& task : exclusive) run_exclusive_task(task);
    if (!drained.empty()) process_requests(drained);
  }
}

void AsyncQServer::run_exclusive_task(ExclusiveTask& task) {
  OSELM_TRACE_SPAN("batch", "run_exclusive");
  try {
    task.fn(checked_backend());
    task.done->set_value();
  } catch (...) {
    task.done->set_exception(std::current_exception());
  }
  // The callback may have initialized (state import) or reset the
  // backend; buffering workers read this mirror, so refresh it or an
  // imported-initialized network would leave them buffering forever.
  backend_initialized_.store(backend_->initialized(),
                             std::memory_order_release);
}

std::future<void> AsyncQServer::run_exclusive_async(
    std::function<void(OsElmQBackend&)> fn) {
  if (!fn) {
    throw std::invalid_argument("AsyncQServer::run_exclusive: null fn");
  }
  ExclusiveTask task{std::move(fn), std::make_shared<std::promise<void>>()};
  std::future<void> done = task.done->get_future();
  {
    std::unique_lock lk(queue_mutex_);
    if (!batch_stop_) {
      exclusive_.push_back(std::move(task));
      lk.unlock();
      queue_cv_.notify_one();
      return done;
    }
  }
  // The batch thread is gone (stop() ran). stop_mutex_ serializes against
  // a stop() still joining it and against concurrent inline callers — the
  // backend stays single-touched even after shutdown. The affinity guard
  // moves with the serialization: bind for the inline call, release after
  // so the next (possibly different) inline caller passes too.
  const std::scoped_lock stop_lock(stop_mutex_);
  batch_affinity_.bind();
  run_exclusive_task(task);
  batch_affinity_.release();
  backend_->ledger().release_writer();
  return done;
}

void AsyncQServer::run_exclusive(
    const std::function<void(OsElmQBackend&)>& fn) {
  run_exclusive_async(fn).get();
}

double AsyncQServer::clip_target(const Session& s, double target) const {
  const OsElmQAgentConfig& agent = s.spec.session.agent;
  if (!agent.clip_targets) return target;
  return std::clamp(target, agent.clip_min, agent.clip_max);
}

void AsyncQServer::coalesced_predict(QNetwork which, bool use_next_state) {
  OSELM_TRACE_SPAN("batch", "coalesced_predict");
  const std::size_t rows = batch_sessions_.size();
  // predict_actions_multi validates exact shapes, so buffers are cached
  // per row count — steady-state serving allocates nothing.
  linalg::MatD& states = states_by_rows_[rows];
  linalg::MatD& q_multi = q_by_rows_[rows];
  if (states.rows() != rows) {
    states = linalg::MatD(rows, model_.state_dim());
    q_multi = linalg::MatD(rows, model_.action_count());
  }
  for (std::size_t i = 0; i < rows; ++i) {
    const Session& s = *batch_sessions_[i];
    states.set_row(i, use_next_state ? s.transition.next_state : s.state);
  }
  checked_backend().predict_actions_multi(states, action_codes_, which,
                                          q_multi);
  // A corrupting backend (rl::FaultBackend kNan, a real numerical blow-up)
  // must not leak silently into action selection or TD targets — surface
  // it as a backend failure so the batch retires with kBackendError and a
  // router can treat the replica as unhealthy.
  for (std::size_t i = 0; i < rows; ++i) {
    const double* q = q_multi.row_ptr(i);
    for (std::size_t a = 0; a < model_.action_count(); ++a) {
      if (!std::isfinite(q[a])) {
        throw std::runtime_error(
            "AsyncQServer: backend returned non-finite Q in coalesced "
            "predict (row " + std::to_string(i) + ", action " +
            std::to_string(a) + ")");
      }
    }
  }
  q_multi_ = &q_multi;
  batches_.fetch_add(1, std::memory_order_relaxed);
  batch_rows_.fetch_add(rows, std::memory_order_relaxed);
  async_metrics().batches.add();
  async_metrics().batch_rows.add(rows);
  {
    const std::scoped_lock lk(stats_mutex_);
    batch_rows_hist_.record(static_cast<double>(rows));
  }
}

double AsyncQServer::session_td_target(Session& s,
                                       const nn::Transition& transition,
                                       util::OpCategory charge_to) {
  double best_next = 0.0;
  if (!transition.done) {
    const util::TimeLedger::PredictScope scope(backend_->ledger(),
                                               charge_to);
    checked_backend().predict_actions(transition.next_state, action_codes_,
                              QNetwork::kTarget, q_ws_);
    for (std::size_t a = 0; a < q_ws_.size(); ++a) {
      if (!std::isfinite(q_ws_[a])) {
        throw std::runtime_error(
            "AsyncQServer: backend returned non-finite Q in TD-target "
            "predict (action " + std::to_string(a) + ")");
      }
    }
    best_next = q_ws_[0];
    for (std::size_t a = 1; a < q_ws_.size(); ++a) {
      if (q_ws_[a] > best_next) best_next = q_ws_[a];
    }
  }
  double target = transition.reward;
  if (!transition.done) {
    target += s.spec.session.agent.gamma * best_next;
  }
  return clip_target(s, target);
}

void AsyncQServer::apply_init_train(Session& s) {
  OSELM_TRACE_SPAN("train", "init_train");
  if (backend_->initialized()) {
    // A co-tenant initialized the shared network first (authoritative
    // re-check — the worker-side mirror may lag); this chunk is stale.
    s.buffer.clear();
    s.buffer.shrink_to_fit();
    return;
  }
  const std::size_t n = s.buffer.size();
  linalg::MatD x(n, model_.input_dim());
  linalg::MatD t(n, 1);
  for (std::size_t i = 0; i < n; ++i) {
    model_.encode_into(s.buffer[i].state, s.buffer[i].action, scratch_sa_);
    x.set_row(i, scratch_sa_);
    t(i, 0) =
        session_td_target(s, s.buffer[i], util::OpCategory::kInitTrain);
  }
  checked_backend().init_train(x, t);
  init_trains_.fetch_add(1, std::memory_order_relaxed);
  async_metrics().init_trains.add();
  backend_initialized_.store(true, std::memory_order_release);
  s.buffer.clear();
  s.buffer.shrink_to_fit();  // the edge device frees D after init training
}

void AsyncQServer::process_requests(std::vector<Request>& requests) {
  OSELM_TRACE_SPAN("batch", "process_requests");
  // Failure containment: a backend fault in one coalesced batch retires
  // the sessions it carried and leaves the batch thread serving everyone
  // else. (Environment faults never reach this thread — workers catch
  // them in advance().)
  const auto failure_text = [](const std::exception& e) {
    const char* what = e.what();
    return std::string((what != nullptr && what[0] != '\0')
                           ? what
                           : "backend failure");
  };
  // Backend-failure events per pass: one per thrown batch / per-request
  // exception (not per retired session), so a router's health tracking
  // counts faults, not blast radius. A pass with zero events resets the
  // consecutive counter — the backend recovered.
  bool had_backend_error = false;
  const auto fail_batch = [&](const std::exception& e) {
    had_backend_error = true;
    backend_failures_.fetch_add(1, std::memory_order_relaxed);
    async_metrics().backend_failures.add();
    OSELM_TRACE_INSTANT("batch", "backend_failure");
    for (Session* failed : batch_sessions_) {
      for (Request& r : requests) {
        if (r.session == failed) r.session = nullptr;
      }
      retire(failed, SessionEndCause::kBackendError, failure_text(e));
    }
  };

  // Greedy batch on theta_1: argmax with lowest-index tie-break, exactly
  // like the single-agent path.
  batch_sessions_.clear();
  for (const Request& r : requests) {
    if (r.session != nullptr && r.kind == RequestKind::kGreedyEval) {
      batch_sessions_.push_back(r.session);
    }
  }
  if (!batch_sessions_.empty()) {
    try {
      coalesced_predict(QNetwork::kMain, /*use_next_state=*/false);
      for (std::size_t i = 0; i < batch_sessions_.size(); ++i) {
        const double* q = q_multi_->row_ptr(i);
        std::size_t best = 0;
        for (std::size_t a = 1; a < model_.action_count(); ++a) {
          if (q[a] > q[best]) best = a;  // ties keep the lowest index
        }
        batch_sessions_[i]->action = best;
      }
    } catch (const std::exception& e) {
      fail_batch(e);
    }
  }

  // TD-target batch on theta_2, charged to kSeqTrain like the agents do.
  batch_sessions_.clear();
  for (const Request& r : requests) {
    if (r.session != nullptr && r.kind == RequestKind::kTdEvalTrain) {
      batch_sessions_.push_back(r.session);
    }
  }
  if (!batch_sessions_.empty()) {
    try {
      const util::TimeLedger::PredictScope scope(
          backend_->ledger(), util::OpCategory::kSeqTrain);
      coalesced_predict(QNetwork::kTarget, /*use_next_state=*/true);
      for (std::size_t i = 0; i < batch_sessions_.size(); ++i) {
        const double* q = q_multi_->row_ptr(i);
        double best_next = q[0];
        for (std::size_t a = 1; a < model_.action_count(); ++a) {
          best_next = std::max(best_next, q[a]);
        }
        batch_sessions_[i]->pending_value = best_next;
      }
    } catch (const std::exception& e) {
      fail_batch(e);
    }
  }

  // Apply trains/init/sync/reset in drain order, then resume each session
  // on the worker pool.
  OSELM_TRACE_SPAN("train", "seq_train_drain");
  for (Request& r : requests) {
    Session* s = r.session;
    if (s == nullptr) continue;
    try {
      switch (r.kind) {
        case RequestKind::kGreedyEval:
          break;  // action already delivered
        case RequestKind::kTdEvalTrain: {
          const double target = clip_target(
              *s, s->transition.reward +
                      s->spec.session.agent.gamma * s->pending_value);
          // A co-tenant §4.3 reset may have de-initialized the shared
          // network after this session drew its update coin; skip then.
          if (backend_->initialized()) {
            checked_backend().seq_train(s->sa, target);
            train_updates_.fetch_add(1, std::memory_order_relaxed);
            async_metrics().train_updates.add();
          }
          break;
        }
        case RequestKind::kTrainOnly: {
          const double target = clip_target(*s, s->transition.reward);
          if (backend_->initialized()) {
            checked_backend().seq_train(s->sa, target);
            train_updates_.fetch_add(1, std::memory_order_relaxed);
            async_metrics().train_updates.add();
          }
          break;
        }
        case RequestKind::kInitTrain:
          apply_init_train(*s);
          break;
        case RequestKind::kSyncTarget:
          checked_backend().sync_target();
          break;
        case RequestKind::kReset:
          checked_backend().initialize();
          backend_initialized_.store(false, std::memory_order_release);
          break;
      }
    } catch (const std::exception& e) {
      had_backend_error = true;
      backend_failures_.fetch_add(1, std::memory_order_relaxed);
      async_metrics().backend_failures.add();
      OSELM_TRACE_INSTANT("batch", "backend_failure");
      retire(s, SessionEndCause::kBackendError, failure_text(e));
      continue;
    }
    pool_->submit([this, s] { advance(s); });
  }
  if (had_backend_error) {
    consecutive_backend_failures_.fetch_add(1, std::memory_order_relaxed);
  } else {
    consecutive_backend_failures_.store(0, std::memory_order_relaxed);
  }
}

}  // namespace oselm::rl
