// Shared serving-session types, hoisted out of serving.hpp so both
// serving front-ends — the lockstep rl::QServer (serving.hpp) and the
// asynchronous continuous-batching rl::AsyncQServer (async_server.hpp) —
// describe their sessions with one vocabulary. A spec that drives a
// lockstep session drives an async session unchanged; only the scheduling
// around it differs.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

#include "rl/oselm_q_agent.hpp"
#include "rl/trainer.hpp"

namespace oselm::rl {

/// Why an admission was refused. Machine-readable so callers (the router's
/// rejection accounting, the scenario chaos driver) can attribute refusals
/// without parsing error strings.
enum class AdmissionRejectReason {
  kCapacity,     ///< live-session cap reached; retry after a retirement
  kStopping,     ///< the server is stopping / stopped; terminal
  kDuplicateId,  ///< the caller's session key is already live (driver-side)
};

/// "capacity" / "stopping" / "duplicate-id" — the verdict-JSON spelling.
[[nodiscard]] constexpr std::string_view to_string(
    AdmissionRejectReason reason) noexcept {
  switch (reason) {
    case AdmissionRejectReason::kCapacity:
      return "capacity";
    case AdmissionRejectReason::kStopping:
      return "stopping";
    case AdmissionRejectReason::kDuplicateId:
      return "duplicate-id";
  }
  return "unknown";
}

/// Why a session's service ended. Machine-readable so callers (the
/// router's rescue logic, the scenario verdict) can attribute endings —
/// and in particular tell a backend failure (rescue-eligible) from an
/// environment failure (the session's own trajectory is poisoned;
/// terminal) — without parsing error strings.
enum class SessionEndCause {
  kCompleted,     ///< ran to its budget / solved criterion
  kStopped,       ///< the server stopped; retired at a step boundary
  kEnvError,      ///< the session's environment threw (worker side)
  kBackendError,  ///< the shared backend threw mid-batch (batch thread)
};

/// "completed" / "stopped" / "env-error" / "backend-error" — the
/// verdict-JSON spelling.
[[nodiscard]] constexpr std::string_view to_string(
    SessionEndCause cause) noexcept {
  switch (cause) {
    case SessionEndCause::kCompleted:
      return "completed";
    case SessionEndCause::kStopped:
      return "stopped";
    case SessionEndCause::kEnvError:
      return "env-error";
    case SessionEndCause::kBackendError:
      return "backend-error";
  }
  return "unknown";
}

/// Thrown by AsyncQServer::add_session / RouterQServer::add_session when
/// an admission is refused (as opposed to being malformed, which stays
/// std::invalid_argument). Derives std::runtime_error so callers that
/// only catch-and-retry keep working; callers that attribute refusals
/// read reason().
///
/// what() embeds the human-readable reason spelling AND the offending
/// session id in a canonical, test-pinned format:
///
///   <who>: admission rejected (<reason>) for session '<session>': <detail>
///
/// so a bare catch-and-log already tells the operator which session was
/// refused and why, without switching on reason().
class AdmissionError : public std::runtime_error {
 public:
  /// `who` is the throwing entry point ("AsyncQServer::add_session"),
  /// `session` the offending session's identity (the router's affinity
  /// key; the async server's derived env#seed descriptor).
  AdmissionError(AdmissionRejectReason reason, const std::string& who,
                 const std::string& session, const std::string& detail)
      : std::runtime_error(who + ": admission rejected (" +
                           std::string(to_string(reason)) +
                           ") for session '" + session + "': " + detail),
        reason_(reason) {}
  [[nodiscard]] AdmissionRejectReason reason() const noexcept {
    return reason_;
  }

 private:
  AdmissionRejectReason reason_;
};

/// One episodic training session served against a shared backend.
struct ServingSessionSpec {
  /// env::make_environment id; accepts the "delay:<micros>:<inner-id>"
  /// latency modifier, which is how the serving benches build
  /// heterogeneous-latency session mixes.
  std::string env_id = "ShapedCartPole-v0";
  std::uint64_t env_seed = 7;
  std::uint64_t agent_seed = 42;
  OsElmQAgentConfig agent;   ///< exploration/update/sync knobs
  TrainerConfig trainer;     ///< episode budget, solved criterion, resets
};

}  // namespace oselm::rl
