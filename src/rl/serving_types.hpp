// Shared serving-session types, hoisted out of serving.hpp so both
// serving front-ends — the lockstep rl::QServer (serving.hpp) and the
// asynchronous continuous-batching rl::AsyncQServer (async_server.hpp) —
// describe their sessions with one vocabulary. A spec that drives a
// lockstep session drives an async session unchanged; only the scheduling
// around it differs.
#pragma once

#include <cstdint>
#include <string>

#include "rl/oselm_q_agent.hpp"
#include "rl/trainer.hpp"

namespace oselm::rl {

/// One episodic training session served against a shared backend.
struct ServingSessionSpec {
  /// env::make_environment id; accepts the "delay:<micros>:<inner-id>"
  /// latency modifier, which is how the serving benches build
  /// heterogeneous-latency session mixes.
  std::string env_id = "ShapedCartPole-v0";
  std::uint64_t env_seed = 7;
  std::uint64_t agent_seed = 42;
  OsElmQAgentConfig agent;   ///< exploration/update/sync knobs
  TrainerConfig trainer;     ///< episode budget, solved criterion, resets
};

}  // namespace oselm::rl
