// ELM Q-Network — design (1) of §4.1: Algorithm 1 without the
// OS-ELM-specific branches. The network is batch-retrained every time
// buffer D (capacity N-tilde) fills (§3.2: "updated only when buffer D
// becomes full"), using the simplified output model and Q-value clipping.
//
// Reconstruction note: the paper is silent on when the ELM variant syncs
// theta_2. Batch training replaces beta wholesale, so this implementation
// snapshots theta_2 <- theta_1 right after each batch train, preserving
// fixed-target semantics between trainings.
#pragma once

#include <vector>

#include "elm/elm.hpp"
#include "rl/agent.hpp"
#include "rl/policy.hpp"
#include "rl/sa_encoding.hpp"
#include "util/rng.hpp"

namespace oselm::rl {

struct ElmQAgentConfig {
  std::size_t hidden_units = 64;
  double gamma = 0.99;
  double epsilon_greedy = 0.7;  ///< epsilon_1
  bool clip_targets = true;
  double clip_min = -1.0;
  double clip_max = 1.0;
  elm::Activation activation = elm::Activation::kReLU;
  double init_low = -1.0;
  double init_high = 1.0;
};

class ElmQAgent final : public Agent {
 public:
  /// `ledger` is the time account to charge (nullptr = private ledger).
  ElmQAgent(SimplifiedOutputModel model, ElmQAgentConfig config,
            std::uint64_t seed, util::TimeLedgerPtr ledger = nullptr);

  std::size_t act(const linalg::VecD& state) override;
  void observe(const nn::Transition& transition) override;
  void episode_end(std::size_t episodes_since_reset) override;
  void reset_weights() override;
  [[nodiscard]] bool supports_weight_reset() const override { return true; }
  [[nodiscard]] std::string_view name() const override { return "ELM"; }
  [[nodiscard]] const util::OpBreakdown& breakdown() const override {
    return ledger_->breakdown();
  }

  std::size_t greedy_action(const linalg::VecD& state);
  [[nodiscard]] std::size_t batch_trainings() const noexcept {
    return batch_trainings_;
  }
  [[nodiscard]] const elm::Elm& network() const noexcept { return net_; }

 private:
  double q_main(const linalg::VecD& state, std::size_t action);
  double td_target(const nn::Transition& transition);
  void run_batch_train();

  SimplifiedOutputModel model_;
  ElmQAgentConfig config_;
  GreedyWithProbabilityPolicy policy_;
  util::Rng rng_;
  elm::Elm net_;
  linalg::MatD beta_target_;

  std::vector<nn::Transition> buffer_;  ///< ring buffer D of capacity N
  std::size_t pushes_ = 0;
  util::TimeLedgerPtr ledger_;
  linalg::VecD scratch_sa_;
  std::size_t batch_trainings_ = 0;
};

}  // namespace oselm::rl
