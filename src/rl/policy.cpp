#include "rl/policy.hpp"

#include <stdexcept>

namespace oselm::rl {

GreedyWithProbabilityPolicy::GreedyWithProbabilityPolicy(
    double greedy_probability, std::size_t action_count)
    : greedy_probability_(greedy_probability), action_count_(action_count) {
  if (greedy_probability < 0.0 || greedy_probability > 1.0) {
    throw std::invalid_argument("Policy: probability outside [0, 1]");
  }
  if (action_count == 0) {
    throw std::invalid_argument("Policy: action_count == 0");
  }
}

}  // namespace oselm::rl
