#include "rl/router.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "util/contract.hpp"
#include "util/hash.hpp"

namespace oselm::rl {

namespace {

/// result += other, element-wise; adopts other's shape on first use.
void accumulate(linalg::MatD& result, const linalg::MatD& other) {
  if (result.empty()) {
    result = other;
    return;
  }
  std::vector<double>& out = result.storage();
  const std::vector<double>& in = other.storage();
  for (std::size_t i = 0; i < out.size(); ++i) out[i] += in[i];
}

void scale(linalg::MatD& m, double factor) noexcept {
  for (double& v : m.storage()) v *= factor;
}

}  // namespace

// ---------------------------------------------------------------------------
// Construction / lifecycle
// ---------------------------------------------------------------------------

RouterQServer::RouterQServer(RouterConfig config, SimplifiedOutputModel model)
    : config_(std::move(config)), model_(model) {
  if (config_.replicas == 0) {
    throw std::invalid_argument("RouterQServer: replicas == 0");
  }
  BackendCapabilities required;
  required.state_sync =
      config_.sync_policy == TrainSyncPolicy::kPeriodicAverage;
  if (config_.sync_policy == TrainSyncPolicy::kPeriodicAverage &&
      config_.sync_every_updates == 0) {
    throw std::invalid_argument("RouterQServer: sync_every_updates == 0");
  }
  replicas_.reserve(config_.replicas);
  sync_states_.resize(config_.replicas);
  // A user-shared ledger must not be charged by R batch threads at once
  // (OpBreakdown::add is a plain +=): swap in private per-replica
  // accounts and settle them into the user's ledger at stop().
  user_ledger_ = config_.backend.ledger;
  if (user_ledger_) replica_ledgers_.reserve(config_.replicas);
  for (std::size_t i = 0; i < config_.replicas; ++i) {
    // Every replica gets the SAME BackendConfig — seed included — so all
    // R networks start with identical weights (the evaluation
    // determinism contract; see the header comment).
    BackendConfig replica_config = config_.backend;
    if (user_ledger_) {
      replica_ledgers_.push_back(std::make_shared<util::TimeLedger>());
      replica_config.ledger = replica_ledgers_.back();
    }
    OsElmQBackendPtr backend =
        make_backend(config_.backend_id, replica_config, required);
    AsyncQServerConfig server = config_.server;
    server.name = config_.name + "/r" + std::to_string(i);
    replicas_.push_back(std::make_unique<AsyncQServer>(
        std::move(backend), model_, std::move(server)));
  }
  if (config_.sync_policy == TrainSyncPolicy::kPeriodicAverage) {
    sync_thread_ = std::thread([this] { sync_loop(); });
  }
}

RouterQServer::~RouterQServer() { stop(); }

void RouterQServer::stop() {
  const std::scoped_lock stop_lock(stop_mutex_);
  stopping_.store(true, std::memory_order_release);
  // Order matters: the sync thread drives run_exclusive calls into the
  // replicas' batch threads, so it must be gone BEFORE any replica shuts
  // its batch thread down (a sync round against stopping replicas would
  // fall back to inline execution racing replica teardown).
  if (sync_thread_.joinable()) {
    {
      const std::scoped_lock lk(sync_mutex_);
      sync_stop_ = true;
    }
    sync_cv_.notify_all();
    sync_thread_.join();
  }
  for (const std::unique_ptr<AsyncQServer>& replica : replicas_) {
    replica->stop();
  }
  // Every batch thread is joined, so the per-replica accounts are
  // quiescent: settle them into the user's shared ledger. Once —
  // stop() is idempotent and the fold must not double-count.
  if (user_ledger_ && !ledger_folded_) {
    ledger_folded_ = true;
    for (const util::TimeLedgerPtr& account : replica_ledgers_) {
      user_ledger_->merge(account->breakdown());
    }
    // Whoever reads-then-reuses the ledger next may do so from any
    // thread; this fold was its last write from ours.
    user_ledger_->release_writer();
  }
}

// ---------------------------------------------------------------------------
// Placement
// ---------------------------------------------------------------------------

std::string RouterQServer::derived_affinity_key(
    const AsyncSessionSpec& spec) {
  return spec.session.env_id + "#" +
         std::to_string(spec.session.env_seed) + "#" +
         std::to_string(spec.session.agent_seed);
}

std::size_t RouterQServer::preferred_replica(
    const std::string& affinity_key) const noexcept {
  // util::fnv1a is platform-stable — the same key maps to the same
  // replica on every build, which the placement tests (and any operator
  // reasoning about session co-location) rely on.
  return static_cast<std::size_t>(util::fnv1a(affinity_key) %
                                  replicas_.size());
}

std::size_t RouterQServer::add_session(const RouterSessionSpec& spec) {
  const std::string key = spec.affinity_key.empty()
                              ? derived_affinity_key(spec.session)
                              : spec.affinity_key;
  const std::size_t preferred = preferred_replica(key);

  const std::scoped_lock lk(placement_mutex_);
  if (stopping_.load(std::memory_order_acquire)) {
    stopping_rejections_.fetch_add(1, std::memory_order_relaxed);
    throw AdmissionError(
        AdmissionRejectReason::kStopping,
        "RouterQServer::add_session: admission rejected — router is "
        "stopping");
  }
  // Pre-admission capacity check. Race-free despite being a separate
  // step from the replica's own admission: this router is the replica's
  // ONLY admitter (placement_mutex_ serializes us against ourselves),
  // and concurrent retirements only DECREASE load — a replica observed
  // under cap cannot be over cap by the time add_session lands.
  const auto load = [this](std::size_t r) {
    return replicas_[r]->live_sessions();
  };
  const std::size_t cap = config_.server.max_live_sessions;
  std::size_t target = preferred;
  if (load(preferred) >= cap) {
    // Spillover: least-loaded replica with room, lowest index on ties.
    std::size_t best = replicas_.size();
    for (std::size_t r = 0; r < replicas_.size(); ++r) {
      const std::size_t l = load(r);
      if (l >= cap) continue;
      if (best == replicas_.size() || l < load(best)) best = r;
    }
    if (best == replicas_.size()) {
      placement_rejections_.fetch_add(1, std::memory_order_relaxed);
      throw AdmissionError(
          AdmissionRejectReason::kCapacity,
          "RouterQServer::add_session: admission rejected — every replica "
          "is at its live-session cap (" +
          std::to_string(replicas_.size()) + " x " + std::to_string(cap) +
          "); retry after a session retires");
    }
    target = best;
    spillovers_.fetch_add(1, std::memory_order_relaxed);
  }

  // Spec errors (bad env, encoder mismatch) propagate from the replica
  // before any placement is recorded.
  const std::size_t local_id = replicas_[target]->add_session(spec.session);
  const std::size_t router_id = next_router_id_++;
  OSELM_DCHECK_LT(target, replicas_.size());
  const bool inserted =
      placements_.emplace(router_id, Placement{target, local_id}).second;
  OSELM_DCHECK(inserted);  // router ids are never reused
  // Every id ever handed out has a recorded placement (ids are dense).
  OSELM_DCHECK_EQ(placements_.size(), next_router_id_);
  sessions_admitted_.fetch_add(1, std::memory_order_relaxed);
  return router_id;
}

AsyncSessionResult RouterQServer::wait(std::size_t router_session_id) {
  Placement placement{};
  {
    const std::scoped_lock lk(placement_mutex_);
    const auto it = placements_.find(router_session_id);
    if (it == placements_.end()) {
      throw std::invalid_argument(
          "RouterQServer::wait: unknown router session id " +
          std::to_string(router_session_id));
    }
    placement = it->second;
  }
  OSELM_DCHECK_LT(placement.replica, replicas_.size());
  // The replica enforces deliver-exactly-once; its local id never leaks.
  AsyncSessionResult result =
      replicas_[placement.replica]->wait(placement.local_id);
  result.id = router_session_id;
  return result;
}

std::vector<AsyncSessionResult> RouterQServer::drain() {
  // Drain per replica so each result's replica index is known, then map
  // (replica, local id) back to the router id. The mapping is built
  // AFTER the drains: every drained session was admitted first, so its
  // placement is recorded by then.
  std::vector<std::pair<std::size_t, AsyncSessionResult>> collected;
  for (std::size_t r = 0; r < replicas_.size(); ++r) {
    for (AsyncSessionResult& result : replicas_[r]->drain()) {
      collected.emplace_back(r, std::move(result));
    }
  }
  std::vector<AsyncSessionResult> out;
  out.reserve(collected.size());
  {
    const std::scoped_lock lk(placement_mutex_);
    std::map<std::pair<std::size_t, std::size_t>, std::size_t> reverse;
    for (const auto& [router_id, placement] : placements_) {
      OSELM_DCHECK_LT(placement.replica, replicas_.size());
      const bool unique =
          reverse
              .emplace(std::make_pair(placement.replica, placement.local_id),
                       router_id)
              .second;
      // Two router ids mapping to one (replica, local id) would make the
      // reverse lookup below nondeterministic.
      OSELM_DCHECK(unique);
    }
    for (auto& [replica, result] : collected) {
      result.id = reverse.at({replica, result.id});
      out.push_back(std::move(result));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const AsyncSessionResult& a, const AsyncSessionResult& b) {
              return a.id < b.id;
            });
  return out;
}

std::size_t RouterQServer::live_sessions() const {
  std::size_t total = 0;
  for (const std::unique_ptr<AsyncQServer>& replica : replicas_) {
    total += replica->live_sessions();
  }
  return total;
}

// ---------------------------------------------------------------------------
// State synchronization
// ---------------------------------------------------------------------------

void RouterQServer::run_exclusive_on_all(
    const std::function<void(OsElmQBackend&)>& fn) {
  for (const std::unique_ptr<AsyncQServer>& replica : replicas_) {
    replica->run_exclusive(fn);
  }
}

std::future<void> RouterQServer::run_exclusive_on(
    std::size_t replica_index, std::function<void(OsElmQBackend&)> fn) {
  if (replica_index >= replicas_.size()) {
    throw std::invalid_argument(
        "RouterQServer::run_exclusive_on: replica index " +
        std::to_string(replica_index) + " out of range (fleet has " +
        std::to_string(replicas_.size()) + ")");
  }
  return replicas_[replica_index]->run_exclusive_async(std::move(fn));
}

bool RouterQServer::average_replicas() {
  // Export every replica's learned state through its batch thread.
  // Sequential (not barrier-synchronized) exports: replicas keep
  // training between snapshots, so the average is slightly stale — the
  // standard parameter-averaging trade, and training order is already
  // documented as scheduling-dependent. No replica ever blocks on
  // another, so no rendezvous deadlock is possible.
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    QNetState& slot = sync_states_[i];
    replicas_[i]->run_exclusive(
        [&slot](OsElmQBackend& backend) { slot = backend.export_state(); });
  }
  linalg::MatD beta;
  linalg::MatD beta_target;
  linalg::MatD p;
  std::size_t initialized = 0;
  for (const QNetState& state : sync_states_) {
    if (!state.initialized) continue;
    ++initialized;
    accumulate(beta, state.beta);
    accumulate(beta_target, state.beta_target);
    accumulate(p, state.p);
  }
  // Nobody has trained yet — nothing to move this round.
  if (initialized == 0) return false;
  const double inv = 1.0 / static_cast<double>(initialized);
  scale(beta, inv);
  scale(beta_target, inv);
  scale(p, inv);
  const QNetState average{std::move(beta), std::move(beta_target),
                          std::move(p), true};
  // Import into EVERY replica — an uninitialized one adopts the fleet's
  // state (its buffering sessions switch to sequential training, exactly
  // as if a local init_train had run).
  for (const std::unique_ptr<AsyncQServer>& replica : replicas_) {
    replica->run_exclusive([&average](OsElmQBackend& backend) {
      backend.import_state(average);
    });
  }
  syncs_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void RouterQServer::sync_loop() {
  std::unique_lock lk(sync_mutex_);
  for (;;) {
    sync_cv_.wait_for(lk, std::chrono::microseconds(config_.sync_poll_us),
                      [this] { return sync_stop_; });
    const bool stopping = sync_stop_;
    std::uint64_t total = 0;
    for (const std::unique_ptr<AsyncQServer>& replica : replicas_) {
      total += replica->train_update_count();
    }
    const bool due = total - last_synced_updates_ >= config_.sync_every_updates;
    // On shutdown, flush a final partial round so short-lived fleets
    // still converge once — then leave before the replicas stop.
    if (due || (stopping && total > last_synced_updates_)) {
      lk.unlock();
      try {
        if (average_replicas()) {
          const std::scoped_lock relock(sync_mutex_);
          last_synced_updates_ = total;
        }
      } catch (...) {
        // A faulted backend already retired its sessions (run_exclusive
        // surfaces the exception here); skip the round and let the next
        // poll retry against the survivors.
      }
      lk.lock();
    }
    if (stopping) return;
  }
}

// ---------------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------------

RouterStats RouterQServer::stats() const {
  RouterStats out;
  out.replicas = replicas_.size();
  out.sessions_admitted = sessions_admitted_.load(std::memory_order_relaxed);
  out.spillovers = spillovers_.load(std::memory_order_relaxed);
  out.placement_rejections =
      placement_rejections_.load(std::memory_order_relaxed);
  out.stopping_rejections =
      stopping_rejections_.load(std::memory_order_relaxed);
  out.syncs = syncs_.load(std::memory_order_relaxed);
  out.per_replica.reserve(replicas_.size());
  for (const std::unique_ptr<AsyncQServer>& replica : replicas_) {
    out.per_replica.push_back(replica->stats());
    out.aggregate.merge(out.per_replica.back());
  }
  return out;
}

std::string RouterStats::to_json() const {
  char head[256];
  std::snprintf(
      head, sizeof(head),
      "{\n"
      "  \"replicas\": %llu,\n"
      "  \"sessions_admitted\": %llu, \"spillovers\": %llu, "
      "\"placement_rejections\": %llu, \"stopping_rejections\": %llu, "
      "\"syncs\": %llu,\n",
      static_cast<unsigned long long>(replicas),
      static_cast<unsigned long long>(sessions_admitted),
      static_cast<unsigned long long>(spillovers),
      static_cast<unsigned long long>(placement_rejections),
      static_cast<unsigned long long>(stopping_rejections),
      static_cast<unsigned long long>(syncs));
  std::string json = std::string(head) + "  \"aggregate\": ";
  json += aggregate.to_json();
  json += ",\n  \"per_replica\": [\n";
  for (std::size_t r = 0; r < per_replica.size(); ++r) {
    json += per_replica[r].to_json();
    if (r + 1 < per_replica.size()) json += ",";
    json += "\n";
  }
  json += "]\n}";
  return json;
}

}  // namespace oselm::rl
