#include "rl/router.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/contract.hpp"
#include "util/hash.hpp"

namespace oselm::rl {

namespace {

constexpr std::size_t kNoReplica = static_cast<std::size_t>(-1);

/// Process-wide router metrics, registered once and cached as references
/// (see async_server.cpp's AsyncMetrics for the pattern rationale).
struct RouterMetrics {
  obs::Counter& spillovers;
  obs::Counter& placement_rejections;
  obs::Counter& rescued;
  obs::Counter& abandoned;
  obs::Counter& replacements;
  obs::Counter& syncs;
  obs::Counter& health_transitions;
  obs::Histogram& admission_wait_us;

  RouterMetrics()
      : spillovers(obs::MetricsRegistry::global().counter(
            "oselm_router_spillovers_total")),
        placement_rejections(obs::MetricsRegistry::global().counter(
            "oselm_router_placement_rejections_total")),
        rescued(obs::MetricsRegistry::global().counter(
            "oselm_router_rescues_total")),
        abandoned(obs::MetricsRegistry::global().counter(
            "oselm_router_rescues_abandoned_total")),
        replacements(obs::MetricsRegistry::global().counter(
            "oselm_router_replacements_total")),
        syncs(obs::MetricsRegistry::global().counter(
            "oselm_router_averaging_rounds_total")),
        health_transitions(obs::MetricsRegistry::global().counter(
            "oselm_router_health_transitions_total")),
        admission_wait_us(obs::MetricsRegistry::global().histogram(
            "oselm_router_admission_wait_us")) {}
};

RouterMetrics& router_metrics() {
  static RouterMetrics metrics;
  return metrics;
}

/// Trace-instant spelling of a health transition; literals so the
/// record path never allocates.
void trace_health_transition(ReplicaHealth state) {
  switch (state) {
    case ReplicaHealth::kHealthy:
      OSELM_TRACE_INSTANT("health", "to_healthy");
      break;
    case ReplicaHealth::kDegraded:
      OSELM_TRACE_INSTANT("health", "to_degraded");
      break;
    case ReplicaHealth::kFailed:
      OSELM_TRACE_INSTANT("health", "to_failed");
      break;
    case ReplicaHealth::kReplaced:
      OSELM_TRACE_INSTANT("health", "to_replaced");
      break;
  }
}

/// result += other, element-wise; adopts other's shape on first use.
void accumulate(linalg::MatD& result, const linalg::MatD& other) {
  if (result.empty()) {
    result = other;
    return;
  }
  std::vector<double>& out = result.storage();
  const std::vector<double>& in = other.storage();
  for (std::size_t i = 0; i < out.size(); ++i) out[i] += in[i];
}

void scale(linalg::MatD& m, double factor) noexcept {
  for (double& v : m.storage()) v *= factor;
}

}  // namespace

// ---------------------------------------------------------------------------
// Construction / lifecycle
// ---------------------------------------------------------------------------

RouterQServer::RouterQServer(RouterConfig config, SimplifiedOutputModel model)
    : config_(std::move(config)), model_(model) {
  if (config_.replicas == 0) {
    throw std::invalid_argument("RouterQServer: replicas == 0");
  }
  if (config_.sync_policy == TrainSyncPolicy::kPeriodicAverage &&
      config_.sync_every_updates == 0) {
    throw std::invalid_argument("RouterQServer: sync_every_updates == 0");
  }
  replica_slots_ = config_.replicas;
  start_ = std::chrono::steady_clock::now();
  replicas_.reserve(replica_slots_);
  retired_stats_.resize(replica_slots_);
  sync_states_.resize(replica_slots_);
  health_.resize(replica_slots_);
  // A user-shared ledger must not be charged by R batch threads at once
  // (OpBreakdown::add is a plain +=): swap in private per-replica
  // accounts and settle them into the user's ledger at stop().
  user_ledger_ = config_.backend.ledger;
  if (user_ledger_) replica_ledgers_.reserve(replica_slots_);
  for (std::size_t i = 0; i < replica_slots_; ++i) {
    replicas_.push_back(build_replica(i, /*incarnation=*/0, nullptr));
    health_[i].timeline.push_back(
        ReplicaHealthEvent{0, ReplicaHealth::kHealthy, now_ms()});
  }
  if (config_.sync_policy == TrainSyncPolicy::kPeriodicAverage) {
    sync_thread_ = std::thread([this] { sync_loop(); });
  }
  maintenance_thread_ = std::thread([this] { maintenance_loop(); });
}

std::unique_ptr<AsyncQServer> RouterQServer::build_replica(
    std::size_t index, std::uint64_t incarnation,
    const QNetState* seed_state) {
  BackendCapabilities required;
  required.state_sync =
      config_.sync_policy == TrainSyncPolicy::kPeriodicAverage;
  // Every replica gets the SAME BackendConfig — seed included — so all
  // R networks start with identical weights (the evaluation determinism
  // contract; see the header comment).
  BackendConfig replica_config = config_.backend;
  if (user_ledger_) {
    replica_ledgers_.push_back(std::make_shared<util::TimeLedger>());
    replica_config.ledger = replica_ledgers_.back();
  }
  // Per-replica backend-id overrides apply to the ORIGINAL incarnation
  // only: a replacement never re-inherits a "fault:" modifier — the
  // faulty backend instance is exactly what is being replaced.
  std::string backend_id = config_.backend_id;
  if (incarnation == 0 && index < config_.replica_backend_ids.size() &&
      !config_.replica_backend_ids[index].empty()) {
    backend_id = config_.replica_backend_ids[index];
  }
  OsElmQBackendPtr backend =
      make_backend(backend_id, replica_config, required);
  // Seed BEFORE the server exists: no batch thread has been spawned, so
  // the import is single-threaded by construction, and the server's
  // constructor observes an already-initialized backend (its sessions
  // skip init_train and go straight to sequential serving).
  if (seed_state != nullptr && seed_state->initialized) {
    backend->import_state(*seed_state);
  }
  AsyncQServerConfig server = config_.server;
  server.name = config_.name + "/r" + std::to_string(index);
  server.on_retire = [this, index, incarnation](AsyncSessionResult&& r) {
    on_replica_retire(index, incarnation, std::move(r));
  };
  return std::make_unique<AsyncQServer>(std::move(backend), model_,
                                        std::move(server));
}

RouterQServer::~RouterQServer() { stop(); }

void RouterQServer::stop() {
  const std::scoped_lock stop_lock(stop_mutex_);
  stopping_.store(true, std::memory_order_release);
  capacity_cv_.notify_all();  // release bounded-wait admissions
  // Maintenance first: it drives replica stop()/swap and rescue
  // re-admission, both of which must not race the fleet teardown below.
  if (maintenance_thread_.joinable()) {
    {
      const std::scoped_lock lk(maintenance_mutex_);
      maintenance_stop_ = true;
    }
    maintenance_cv_.notify_all();
    maintenance_thread_.join();
  }
  // A retirement callback racing the stopping_ flag may have enqueued a
  // rescue after the maintenance thread's final sweep; abandon it here
  // so every admitted session still ends exactly once.
  process_rescues(/*abandon_all=*/true);
  // Sync next: it drives run_exclusive calls into the replicas' batch
  // threads, so it must be gone BEFORE any replica shuts its batch
  // thread down (a sync round against stopping replicas would fall back
  // to inline execution racing replica teardown).
  if (sync_thread_.joinable()) {
    {
      const std::scoped_lock lk(sync_mutex_);
      sync_stop_ = true;
    }
    sync_cv_.notify_all();
    sync_thread_.join();
  }
  {
    const std::shared_lock fleet(fleet_mutex_);
    for (const std::unique_ptr<AsyncQServer>& replica : replicas_) {
      replica->stop();
    }
  }
  // Every batch thread is joined, so the per-replica accounts are
  // quiescent: settle them into the user's shared ledger. Once —
  // stop() is idempotent and the fold must not double-count. Retired
  // incarnations' accounts are in the same list (appended on
  // replacement), so their time is not lost.
  if (user_ledger_ && !ledger_folded_) {
    ledger_folded_ = true;
    for (const util::TimeLedgerPtr& account : replica_ledgers_) {
      user_ledger_->merge(account->breakdown());
    }
    // Whoever reads-then-reuses the ledger next may do so from any
    // thread; this fold was its last write from ours.
    user_ledger_->release_writer();
  }
}

double RouterQServer::now_ms() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

// ---------------------------------------------------------------------------
// Placement & admission
// ---------------------------------------------------------------------------

std::string RouterQServer::derived_affinity_key(
    const AsyncSessionSpec& spec) {
  return spec.session.env_id + "#" +
         std::to_string(spec.session.env_seed) + "#" +
         std::to_string(spec.session.agent_seed);
}

std::size_t RouterQServer::preferred_replica(
    const std::string& affinity_key) const noexcept {
  // util::fnv1a is platform-stable — the same key maps to the same
  // replica on every build, which the placement tests (and any operator
  // reasoning about session co-location) rely on.
  return static_cast<std::size_t>(util::fnv1a(affinity_key) %
                                  replica_slots_);
}

std::size_t RouterQServer::pick_replica_locked(const std::string& key,
                                               bool count_spillover) {
  // kFailed replicas are mid-replacement: excluded from placement.
  // Everything else (kDegraded included) serves.
  const auto usable = [this](std::size_t r) {
    const std::scoped_lock hl(health_mutex_);
    return health_[r].state != ReplicaHealth::kFailed;
  };
  // Capacity pre-check. Race-free despite being a separate step from
  // the replica's own admission: this router is the replica's ONLY
  // admitter (placement_mutex_ serializes admission and rescue), and
  // concurrent retirements only DECREASE load — a replica observed
  // under cap cannot be over cap by the time add_session lands.
  const auto load = [this](std::size_t r) {
    return replicas_[r]->live_sessions();
  };
  const std::size_t cap = config_.server.max_live_sessions;
  const std::size_t preferred = preferred_replica(key);
  if (usable(preferred) && load(preferred) < cap) return preferred;
  // Spillover: least-loaded usable replica with room, lowest index on
  // ties.
  std::size_t best = kNoReplica;
  for (std::size_t r = 0; r < replica_slots_; ++r) {
    if (r == preferred || !usable(r)) continue;
    const std::size_t l = load(r);
    if (l >= cap) continue;
    if (best == kNoReplica || l < load(best)) best = r;
  }
  if (best != kNoReplica && count_spillover) {
    spillovers_.fetch_add(1, std::memory_order_relaxed);
    router_metrics().spillovers.add();
    OSELM_TRACE_INSTANT("router", "spillover");
  }
  return best;
}

std::size_t RouterQServer::add_session(const RouterSessionSpec& spec) {
  const std::string key = spec.affinity_key.empty()
                              ? derived_affinity_key(spec.session)
                              : spec.affinity_key;
  const std::shared_lock fleet(fleet_mutex_);
  std::unique_lock lk(placement_mutex_);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::microseconds(config_.admission_wait_us);
  bool waited = false;
  std::uint64_t wait_start_us = 0;  // 0 = never blocked / timing off
  for (;;) {
    if (stopping_.load(std::memory_order_acquire)) {
      stopping_rejections_.fetch_add(1, std::memory_order_relaxed);
      throw AdmissionError(AdmissionRejectReason::kStopping,
                           "RouterQServer::add_session", key,
                           "router is stopping");
    }
    const std::size_t target = pick_replica_locked(key, true);
    if (target != kNoReplica) {
      // Spec errors (bad env, encoder mismatch) propagate from the
      // replica before any placement is recorded. An AdmissionError here
      // means the replica was marked kFailed and stopped between our
      // health check and the admission — re-pick (the mark happens
      // BEFORE the stop, so the next pick excludes it).
      std::size_t local_id = 0;
      try {
        local_id = replicas_[target]->add_session(spec.session);
      } catch (const AdmissionError&) {
        continue;
      }
      const std::size_t router_id = next_router_id_++;
      std::uint64_t incarnation = 0;
      {
        const std::scoped_lock hl(health_mutex_);
        incarnation = health_[target].incarnation;
      }
      Placement placement;
      placement.replica = target;
      placement.incarnation = incarnation;
      placement.local_id = local_id;
      placement.key = key;
      placement.spec = spec.session;
      const bool inserted =
          placements_.emplace(router_id, std::move(placement)).second;
      OSELM_DCHECK(inserted);  // router ids are never reused
      const bool unique =
          reverse_
              .emplace(ReverseKey{target, incarnation, local_id}, router_id)
              .second;
      // Two router ids on one (replica, incarnation, local id) would
      // make retirement attribution ambiguous.
      OSELM_DCHECK(unique);
      // Every id ever handed out has a recorded placement (ids are
      // dense). The callback's reverse lookup can only run after this
      // insert: placement_mutex_ is held across the replica admission
      // AND the recording.
      OSELM_DCHECK_EQ(placements_.size(), next_router_id_);
      sessions_admitted_.fetch_add(1, std::memory_order_relaxed);
      OSELM_TRACE_INSTANT("router", "place");
      if (wait_start_us != 0) {
        router_metrics().admission_wait_us.record(
            static_cast<double>(obs::Tracer::now_us() - wait_start_us));
      }
      return router_id;
    }
    // Every usable replica is at cap: bounded wait for a retirement to
    // free a slot (capacity_cv_ fires on every finalization and on
    // stop()), then re-pick; reject on deadline.
    if (config_.admission_wait_us == 0 ||
        std::chrono::steady_clock::now() >= deadline) {
      placement_rejections_.fetch_add(1, std::memory_order_relaxed);
      router_metrics().placement_rejections.add();
      OSELM_TRACE_INSTANT("router", "placement_rejected");
      if (waited) {
        admission_wait_timeouts_.fetch_add(1, std::memory_order_relaxed);
        if (wait_start_us != 0) {
          router_metrics().admission_wait_us.record(
              static_cast<double>(obs::Tracer::now_us() - wait_start_us));
        }
      }
      throw AdmissionError(
          AdmissionRejectReason::kCapacity, "RouterQServer::add_session",
          key,
          "every replica is at its live-session cap (" +
              std::to_string(replica_slots_) + " x " +
              std::to_string(config_.server.max_live_sessions) +
              (waited ? ") and none retired within " +
                            std::to_string(config_.admission_wait_us) + "us"
                      : "); retry after a session retires"));
    }
    if (!waited) {
      waited = true;
      admission_waits_.fetch_add(1, std::memory_order_relaxed);
      if (obs::Tracer::enabled() || obs::timing_enabled()) {
        wait_start_us = obs::Tracer::now_us();
      }
    }
    capacity_cv_.wait_until(lk, deadline);
  }
}

// ---------------------------------------------------------------------------
// Result delivery (router level — replicas run in on_retire mode)
// ---------------------------------------------------------------------------

void RouterQServer::on_replica_retire(std::size_t replica_index,
                                      std::uint64_t incarnation,
                                      AsyncSessionResult&& result) {
  std::size_t router_id = 0;
  std::size_t rescues = 0;
  bool rescue = false;
  {
    const std::scoped_lock lk(placement_mutex_);
    const auto it = reverse_.find(
        ReverseKey{replica_index, incarnation, result.id});
    // add_session/attempt_rescue record the placement under
    // placement_mutex_ BEFORE the replica can retire the session, so
    // the lookup cannot miss.
    OSELM_DCHECK(it != reverse_.end());
    router_id = it->second;
    rescues = placements_.at(router_id).rescues;
    // Rescue-eligible: the session ended because its replica failed —
    // it retired kStopped by the replacement's stop() or kBackendError
    // off the faulted backend, on an incarnation health marked kFailed.
    // (The mark happens-before the stop, so kStopped retirements on a
    // failed replica always observe it.) Router shutdown finalizes
    // instead: there is nowhere left to re-place.
    if ((result.cause == SessionEndCause::kStopped ||
         result.cause == SessionEndCause::kBackendError) &&
        !stopping_.load(std::memory_order_acquire)) {
      const std::scoped_lock hl(health_mutex_);
      const HealthSlot& slot = health_[replica_index];
      rescue = slot.state == ReplicaHealth::kFailed &&
               slot.incarnation == incarnation;
    }
  }
  if (rescue) {
    {
      const std::scoped_lock lk(maintenance_mutex_);
      rescue_queue_.push_back(RescueJob{router_id, std::move(result)});
    }
    maintenance_cv_.notify_all();
    return;
  }
  result.rescues = rescues;
  finalize_result(router_id, std::move(result));
}

void RouterQServer::finalize_result(std::size_t router_id,
                                    AsyncSessionResult&& result) {
  {
    const std::scoped_lock lk(results_mutex_);
    result.id = router_id;
    const bool inserted =
        results_.emplace(router_id, std::move(result)).second;
    // Exactly-once: a session finalizes through precisely one of the
    // completion, failure, stop, or abandonment paths.
    OSELM_DCHECK(inserted);
    ++finalized_;
  }
  results_cv_.notify_all();
  // Every finalization freed a replica slot somewhere: wake bounded-wait
  // admissions (paired with placement_mutex_; notifying unlocked is
  // fine).
  capacity_cv_.notify_all();
}

AsyncSessionResult RouterQServer::wait(std::size_t router_session_id) {
  {
    const std::scoped_lock lk(placement_mutex_);
    if (router_session_id >= next_router_id_) {
      throw std::invalid_argument(
          "RouterQServer::wait: unknown router session id " +
          std::to_string(router_session_id));
    }
  }
  std::unique_lock lk(results_mutex_);
  if (claimed_.contains(router_session_id)) {
    throw std::logic_error("RouterQServer::wait: result of session " +
                           std::to_string(router_session_id) +
                           " was already claimed");
  }
  results_cv_.wait(lk,
                   [&] { return results_.contains(router_session_id); });
  // Deliver-once: the result moves out so a server that admits and
  // retires millions of sessions does not accumulate their trajectories.
  auto node = results_.extract(router_session_id);
  claimed_.insert(router_session_id);
  return std::move(node.mapped());
}

std::vector<AsyncSessionResult> RouterQServer::drain() {
  std::unique_lock lk(results_mutex_);
  results_cv_.wait(lk, [&] {
    return finalized_ ==
           sessions_admitted_.load(std::memory_order_acquire);
  });
  std::vector<AsyncSessionResult> out;
  out.reserve(results_.size());
  // std::map iterates in key order == router admission order.
  for (auto& [id, result] : results_) {
    claimed_.insert(id);
    out.push_back(std::move(result));
  }
  results_.clear();
  return out;
}

std::size_t RouterQServer::live_sessions() const {
  const std::shared_lock fleet(fleet_mutex_);
  std::size_t total = 0;
  for (const std::unique_ptr<AsyncQServer>& replica : replicas_) {
    total += replica->live_sessions();
  }
  return total;
}

// ---------------------------------------------------------------------------
// Replica lifecycle — maintenance thread
// ---------------------------------------------------------------------------

void RouterQServer::kill_replica(std::size_t replica_index) {
  if (replica_index >= replica_slots_) {
    throw std::invalid_argument(
        "RouterQServer::kill_replica: replica index " +
        std::to_string(replica_index) + " out of range (fleet has " +
        std::to_string(replica_slots_) + ")");
  }
  {
    const std::scoped_lock lk(maintenance_mutex_);
    if (maintenance_stop_) return;  // stopping: the fleet dies anyway
    kill_requests_.push_back(replica_index);
  }
  maintenance_cv_.notify_all();
}

void RouterQServer::record_health_event_locked(std::size_t index,
                                               ReplicaHealth state) {
  HealthSlot& slot = health_[index];
  slot.state = state;
  slot.timeline.push_back(
      ReplicaHealthEvent{slot.incarnation, state, now_ms()});
  router_metrics().health_transitions.add();
  trace_health_transition(state);
}

std::vector<std::size_t> RouterQServer::observe_health(
    const std::vector<std::size_t>& kill_requests) {
  std::vector<std::size_t> newly_failed;
  const std::shared_lock fleet(fleet_mutex_);
  const std::scoped_lock hl(health_mutex_);
  for (std::size_t i = 0; i < replica_slots_; ++i) {
    HealthSlot& slot = health_[i];
    if (slot.state == ReplicaHealth::kFailed) continue;  // awaiting swap
    const std::uint64_t events = replicas_[i]->backend_failure_events();
    if (events > slot.observed_failures) {
      slot.observed_failures = events;
      // kDegraded is sticky for the rest of the incarnation — the
      // timeline stays monotone even when the backend recovers.
      if (slot.state == ReplicaHealth::kHealthy) {
        record_health_event_locked(i, ReplicaHealth::kDegraded);
      }
    }
    const bool threshold =
        replicas_[i]->consecutive_backend_failures() >=
        config_.fail_after_consecutive;
    const bool killed =
        std::find(kill_requests.begin(), kill_requests.end(), i) !=
        kill_requests.end();
    if (threshold || killed) {
      record_health_event_locked(i, ReplicaHealth::kFailed);
      newly_failed.push_back(i);
    }
  }
  return newly_failed;
}

void RouterQServer::replace_replica(std::size_t index) {
  OSELM_TRACE_SPAN("router", "replace_replica");
  // 1. Choose the replacement's seed state: the last fleet average when
  //    periodic averaging has produced one, else a live export off the
  //    first initialized survivor, else fresh weights.
  QNetState seed;
  bool seeded = false;
  {
    const std::scoped_lock lk(seed_mutex_);
    if (has_last_average_) {
      seed = last_average_;
      seeded = true;
    }
  }
  if (!seeded) {
    const std::shared_lock fleet(fleet_mutex_);
    for (std::size_t r = 0; r < replica_slots_ && !seeded; ++r) {
      if (r == index) continue;
      try {
        replicas_[r]->run_exclusive([&](OsElmQBackend& backend) {
          if (!backend.initialized()) return;
          seed = backend.export_state();
          seeded = true;
        });
      } catch (...) {
        // A faulted survivor cannot donate state; try the next one.
      }
    }
  }
  // 2. Stop the failed incarnation. Its live sessions retire (kStopped /
  //    kBackendError); their callbacks see the kFailed mark — recorded
  //    before this call — and queue themselves for rescue.
  std::uint64_t old_incarnation = 0;
  {
    const std::scoped_lock hl(health_mutex_);
    old_incarnation = health_[index].incarnation;
  }
  {
    const std::shared_lock fleet(fleet_mutex_);
    replicas_[index]->stop();
  }
  // 3. Build the replacement outside every lock (backend construction
  //    and state import are the expensive part).
  std::unique_ptr<AsyncQServer> fresh =
      build_replica(index, old_incarnation + 1, seeded ? &seed : nullptr);
  // 4. Swap it in. The health transition rides the same unique-lock
  //    critical section so an admission that sees the new replica also
  //    sees the new incarnation (its reverse keys must match the
  //    callbacks the new server will make).
  {
    const std::unique_lock fleet(fleet_mutex_);
    retired_stats_[index].merge(replicas_[index]->stats());
    replicas_[index].swap(fresh);
    const std::scoped_lock hl(health_mutex_);
    record_health_event_locked(index, ReplicaHealth::kReplaced);
    ++health_[index].incarnation;
    health_[index].observed_failures = 0;
    record_health_event_locked(index, ReplicaHealth::kHealthy);
  }
  fresh.reset();  // destroy the old incarnation outside the fleet lock
  replacements_.fetch_add(1, std::memory_order_relaxed);
  router_metrics().replacements.add();
  if (seeded) replacements_seeded_.fetch_add(1, std::memory_order_relaxed);
  capacity_cv_.notify_all();  // a whole replica's capacity came back
}

void RouterQServer::attempt_rescue(RescueJob&& job, bool abandon_all) {
  OSELM_TRACE_SPAN("rescue", "attempt");
  const std::size_t max_attempts =
      std::max<std::size_t>(1, config_.rescue_max_attempts);
  for (std::size_t attempt = 1; !abandon_all && attempt <= max_attempts;
       ++attempt) {
    if (stopping_.load(std::memory_order_acquire)) break;
    {
      const std::shared_lock fleet(fleet_mutex_);
      const std::scoped_lock lk(placement_mutex_);
      Placement& placement = placements_.at(job.router_id);
      // Re-placement honors the same affinity-then-spillover policy as
      // admission but never counts spillovers — the preferred replica
      // is the one that just died.
      const std::size_t target = pick_replica_locked(placement.key, false);
      if (target != kNoReplica) {
        try {
          const std::size_t local_id =
              replicas_[target]->add_session(placement.spec);
          std::uint64_t incarnation = 0;
          {
            const std::scoped_lock hl(health_mutex_);
            incarnation = health_[target].incarnation;
          }
          placement.replica = target;
          placement.incarnation = incarnation;
          placement.local_id = local_id;
          ++placement.rescues;
          const bool unique =
              reverse_
                  .emplace(ReverseKey{target, incarnation, local_id},
                           job.router_id)
                  .second;
          OSELM_DCHECK(unique);
          rescued_.fetch_add(1, std::memory_order_relaxed);
          router_metrics().rescued.add();
          OSELM_TRACE_INSTANT("rescue", "rescued");
          return;  // the re-placed run delivers the final result
        } catch (const AdmissionError&) {
          // The target failed between health check and admission;
          // back off and re-pick like the capacity case.
        }
      }
    }
    // Deterministic linear backoff: attempt * rescue_backoff_us.
    std::this_thread::sleep_for(std::chrono::microseconds(
        config_.rescue_backoff_us * static_cast<std::uint64_t>(attempt)));
  }
  // Abandoned: deliver the partial result as a backend failure so the
  // session still ends exactly once, with an error naming why.
  std::size_t rescues = 0;
  {
    const std::scoped_lock lk(placement_mutex_);
    rescues = placements_.at(job.router_id).rescues;
  }
  abandoned_.fetch_add(1, std::memory_order_relaxed);
  router_metrics().abandoned.add();
  OSELM_TRACE_INSTANT("rescue", "abandoned");
  const bool shutdown =
      abandon_all || stopping_.load(std::memory_order_acquire);
  std::string note =
      shutdown ? "router stopping"
               : "no capacity after " + std::to_string(max_attempts) +
                     " attempts";
  AsyncSessionResult result = std::move(job.partial);
  result.cause = SessionEndCause::kBackendError;
  result.completed = false;
  result.failed = true;
  result.rescues = rescues;
  result.error = "rescue abandoned (" + note + ")" +
                 (result.error.empty() ? "" : ": " + result.error);
  finalize_result(job.router_id, std::move(result));
}

void RouterQServer::process_rescues(bool abandon_all) {
  for (;;) {
    RescueJob job;
    {
      const std::scoped_lock lk(maintenance_mutex_);
      if (rescue_queue_.empty()) return;
      job = std::move(rescue_queue_.front());
      rescue_queue_.erase(rescue_queue_.begin());
    }
    attempt_rescue(std::move(job), abandon_all);
  }
}

void RouterQServer::maintenance_loop() {
  obs::Tracer::set_thread_name((config_.name + "/maintenance").c_str());
  std::unique_lock lk(maintenance_mutex_);
  for (;;) {
    maintenance_cv_.wait_for(
        lk, std::chrono::microseconds(config_.health_poll_us), [this] {
          return maintenance_stop_ || !kill_requests_.empty() ||
                 !rescue_queue_.empty();
        });
    const bool stopping = maintenance_stop_;
    std::vector<std::size_t> kills = std::move(kill_requests_);
    kill_requests_.clear();
    lk.unlock();
    if (!stopping) {
      const std::vector<std::size_t> failed = observe_health(kills);
      for (const std::size_t index : failed) replace_replica(index);
    }
    // Rescues queue during replace_replica's stop(); re-place them now
    // (the replacement is already serving). On shutdown they abandon —
    // stop() repeats the sweep after the join for stragglers.
    process_rescues(/*abandon_all=*/stopping);
    lk.lock();
    if (stopping) return;
  }
}

// ---------------------------------------------------------------------------
// State synchronization
// ---------------------------------------------------------------------------

void RouterQServer::run_exclusive_on_all(
    const std::function<void(OsElmQBackend&)>& fn) {
  const std::shared_lock fleet(fleet_mutex_);
  for (const std::unique_ptr<AsyncQServer>& replica : replicas_) {
    replica->run_exclusive(fn);
  }
}

std::future<void> RouterQServer::run_exclusive_on(
    std::size_t replica_index, std::function<void(OsElmQBackend&)> fn) {
  const std::shared_lock fleet(fleet_mutex_);
  if (replica_index >= replicas_.size()) {
    throw std::invalid_argument(
        "RouterQServer::run_exclusive_on: replica index " +
        std::to_string(replica_index) + " out of range (fleet has " +
        std::to_string(replicas_.size()) + ")");
  }
  return replicas_[replica_index]->run_exclusive_async(std::move(fn));
}

bool RouterQServer::average_replicas() {
  OSELM_TRACE_SPAN("averaging", "round");
  const std::shared_lock fleet(fleet_mutex_);
  // Export every replica's learned state through its batch thread.
  // Sequential (not barrier-synchronized) exports: replicas keep
  // training between snapshots, so the average is slightly stale — the
  // standard parameter-averaging trade, and training order is already
  // documented as scheduling-dependent. No replica ever blocks on
  // another, so no rendezvous deadlock is possible.
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    QNetState& slot = sync_states_[i];
    replicas_[i]->run_exclusive(
        [&slot](OsElmQBackend& backend) { slot = backend.export_state(); });
  }
  linalg::MatD beta;
  linalg::MatD beta_target;
  linalg::MatD p;
  std::size_t initialized = 0;
  for (const QNetState& state : sync_states_) {
    if (!state.initialized) continue;
    ++initialized;
    accumulate(beta, state.beta);
    accumulate(beta_target, state.beta_target);
    accumulate(p, state.p);
  }
  // Nobody has trained yet — nothing to move this round.
  if (initialized == 0) return false;
  const double inv = 1.0 / static_cast<double>(initialized);
  scale(beta, inv);
  scale(beta_target, inv);
  scale(p, inv);
  const QNetState average{std::move(beta), std::move(beta_target),
                          std::move(p), true};
  // Keep a copy as the replacement seed: a replica failing later starts
  // from the fleet's consensus instead of fresh weights.
  {
    const std::scoped_lock lk(seed_mutex_);
    last_average_ = average;
    has_last_average_ = true;
  }
  // Import into EVERY replica — an uninitialized one adopts the fleet's
  // state (its buffering sessions switch to sequential training, exactly
  // as if a local init_train had run).
  for (const std::unique_ptr<AsyncQServer>& replica : replicas_) {
    replica->run_exclusive([&average](OsElmQBackend& backend) {
      backend.import_state(average);
    });
  }
  syncs_.fetch_add(1, std::memory_order_relaxed);
  router_metrics().syncs.add();
  return true;
}

void RouterQServer::sync_loop() {
  obs::Tracer::set_thread_name((config_.name + "/sync").c_str());
  std::unique_lock lk(sync_mutex_);
  for (;;) {
    sync_cv_.wait_for(lk, std::chrono::microseconds(config_.sync_poll_us),
                      [this] { return sync_stop_; });
    const bool stopping = sync_stop_;
    std::uint64_t total = 0;
    {
      const std::shared_lock fleet(fleet_mutex_);
      for (const std::unique_ptr<AsyncQServer>& replica : replicas_) {
        total += replica->train_update_count();
      }
    }
    const bool due = total - last_synced_updates_ >= config_.sync_every_updates;
    // On shutdown, flush a final partial round so short-lived fleets
    // still converge once — then leave before the replicas stop.
    if (due || (stopping && total > last_synced_updates_)) {
      lk.unlock();
      try {
        if (average_replicas()) {
          const std::scoped_lock relock(sync_mutex_);
          last_synced_updates_ = total;
        }
      } catch (...) {
        // A faulted backend already retired its sessions (run_exclusive
        // surfaces the exception here); skip the round and let the next
        // poll retry against the survivors.
      }
      lk.lock();
    }
    if (stopping) return;
  }
}

// ---------------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------------

RouterStats RouterQServer::stats() const {
  RouterStats out;
  out.replicas = replica_slots_;
  out.sessions_admitted = sessions_admitted_.load(std::memory_order_relaxed);
  out.spillovers = spillovers_.load(std::memory_order_relaxed);
  out.placement_rejections =
      placement_rejections_.load(std::memory_order_relaxed);
  out.stopping_rejections =
      stopping_rejections_.load(std::memory_order_relaxed);
  out.syncs = syncs_.load(std::memory_order_relaxed);
  out.rescued = rescued_.load(std::memory_order_relaxed);
  out.abandoned = abandoned_.load(std::memory_order_relaxed);
  out.replacements = replacements_.load(std::memory_order_relaxed);
  out.replacements_seeded =
      replacements_seeded_.load(std::memory_order_relaxed);
  out.admission_waits = admission_waits_.load(std::memory_order_relaxed);
  out.admission_wait_timeouts =
      admission_wait_timeouts_.load(std::memory_order_relaxed);
  out.captured_at_us = obs::wall_clock_us();
  out.uptime_us = static_cast<std::uint64_t>(now_ms() * 1000.0);
  out.per_replica.reserve(replica_slots_);
  {
    const std::shared_lock fleet(fleet_mutex_);
    for (std::size_t r = 0; r < replica_slots_; ++r) {
      // Per-SLOT view: retired incarnations' counters plus the live one.
      AsyncServerStats slot = retired_stats_[r];
      slot.merge(replicas_[r]->stats());
      out.aggregate.merge(slot);
      out.per_replica.push_back(std::move(slot));
    }
  }
  {
    const std::scoped_lock hl(health_mutex_);
    out.health.reserve(replica_slots_);
    for (const HealthSlot& slot : health_) {
      ReplicaHealthInfo info;
      info.state = slot.state;
      info.incarnation = slot.incarnation;
      info.failure_events = slot.observed_failures;
      info.timeline = slot.timeline;
      out.health.push_back(std::move(info));
    }
  }
  return out;
}

std::string RouterStats::health_json() const {
  std::string json = "[\n";
  for (std::size_t r = 0; r < health.size(); ++r) {
    const ReplicaHealthInfo& info = health[r];
    char head[160];
    std::snprintf(head, sizeof(head),
                  "  {\"replica\": %llu, \"state\": \"%s\", "
                  "\"incarnation\": %llu, \"failure_events\": %llu, "
                  "\"timeline\": [",
                  static_cast<unsigned long long>(r),
                  std::string(to_string(info.state)).c_str(),
                  static_cast<unsigned long long>(info.incarnation),
                  static_cast<unsigned long long>(info.failure_events));
    json += head;
    for (std::size_t e = 0; e < info.timeline.size(); ++e) {
      const ReplicaHealthEvent& event = info.timeline[e];
      char entry[128];
      std::snprintf(entry, sizeof(entry),
                    "{\"incarnation\": %llu, \"state\": \"%s\", "
                    "\"at_ms\": %.3f}",
                    static_cast<unsigned long long>(event.incarnation),
                    std::string(to_string(event.state)).c_str(),
                    event.at_ms);
      json += entry;
      if (e + 1 < info.timeline.size()) json += ", ";
    }
    json += "]}";
    if (r + 1 < health.size()) json += ",";
    json += "\n";
  }
  json += "]";
  return json;
}

std::string RouterStats::to_json() const {
  char head[768];
  std::snprintf(
      head, sizeof(head),
      "{\n"
      "  \"replicas\": %llu,\n"
      "  \"sessions_admitted\": %llu, \"spillovers\": %llu, "
      "\"placement_rejections\": %llu, \"stopping_rejections\": %llu, "
      "\"syncs\": %llu,\n"
      "  \"rescued\": %llu, \"abandoned\": %llu, \"replacements\": %llu, "
      "\"replacements_seeded\": %llu,\n"
      "  \"admission_waits\": %llu, \"admission_wait_timeouts\": %llu,\n"
      "  \"captured_at_us\": %llu, \"uptime_us\": %llu,\n",
      static_cast<unsigned long long>(replicas),
      static_cast<unsigned long long>(sessions_admitted),
      static_cast<unsigned long long>(spillovers),
      static_cast<unsigned long long>(placement_rejections),
      static_cast<unsigned long long>(stopping_rejections),
      static_cast<unsigned long long>(syncs),
      static_cast<unsigned long long>(rescued),
      static_cast<unsigned long long>(abandoned),
      static_cast<unsigned long long>(replacements),
      static_cast<unsigned long long>(replacements_seeded),
      static_cast<unsigned long long>(admission_waits),
      static_cast<unsigned long long>(admission_wait_timeouts),
      static_cast<unsigned long long>(captured_at_us),
      static_cast<unsigned long long>(uptime_us));
  std::string json = std::string(head) + "  \"health\": ";
  json += health_json();
  json += ",\n  \"aggregate\": ";
  json += aggregate.to_json();
  json += ",\n  \"per_replica\": [\n";
  for (std::size_t r = 0; r < per_replica.size(); ++r) {
    json += per_replica[r].to_json();
    if (r + 1 < per_replica.size()) json += ",";
    json += "\n";
  }
  json += "]\n}";
  return json;
}

}  // namespace oselm::rl
