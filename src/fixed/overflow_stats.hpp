// Saturation accounting for fixed-point arithmetic.
//
// The FPGA functional model uses saturating Q-format arithmetic; counting
// saturation events is how the fidelity experiments (bench_ablation_
// fixed_point) diagnose where the Q12.20 format loses information.
#pragma once

#include <cstdint>

namespace oselm::fixed {

struct OverflowStats {
  std::uint64_t add_saturations = 0;
  std::uint64_t mul_saturations = 0;
  std::uint64_t div_saturations = 0;
  std::uint64_t div_by_zero = 0;
  std::uint64_t conversion_saturations = 0;

  [[nodiscard]] std::uint64_t total() const noexcept {
    return add_saturations + mul_saturations + div_saturations + div_by_zero +
           conversion_saturations;
  }

  void reset() noexcept { *this = OverflowStats{}; }
};

/// Thread-local saturation counters (each worker thread observes its own).
OverflowStats& overflow_stats() noexcept;

}  // namespace oselm::fixed
