// 32-bit signed Q-format fixed-point arithmetic with saturation.
//
// The paper's FPGA core stores inputs, weights (alpha, beta) and all
// intermediate results as "32-bit Q20" numbers (§4.2): 1 sign bit,
// 11 integer bits, 20 fractional bits. Fixed<20> reproduces that format;
// the template parameter exists so precision-ablation benches can sweep
// other splits of the 32-bit word.
//
// Semantics match a typical HLS implementation:
//   * multiplication keeps a 64-bit intermediate, rounds to nearest, then
//     saturates into the 32-bit result;
//   * division widens the dividend by FracBits before the integer divide;
//   * saturation events are counted in fixed::overflow_stats().
#pragma once

#include <compare>
#include <cstdint>
#include <limits>

#include "fixed/overflow_stats.hpp"

namespace oselm::fixed {

template <int FracBits>
class Fixed {
  static_assert(FracBits > 0 && FracBits < 31,
                "Fixed: fractional bits must be in (0, 31)");

 public:
  static constexpr int kFracBits = FracBits;
  static constexpr int kIntBits = 31 - FracBits;  // excluding sign
  static constexpr std::int64_t kOne = std::int64_t{1} << FracBits;
  static constexpr std::int32_t kRawMax =
      std::numeric_limits<std::int32_t>::max();
  static constexpr std::int32_t kRawMin =
      std::numeric_limits<std::int32_t>::min();

  constexpr Fixed() noexcept = default;

  /// Converts from double with round-to-nearest and saturation.
  static Fixed from_double(double value) noexcept {
    const double scaled = value * static_cast<double>(kOne);
    if (scaled >= static_cast<double>(kRawMax)) {
      ++overflow_stats().conversion_saturations;
      return from_raw(kRawMax);
    }
    if (scaled <= static_cast<double>(kRawMin)) {
      ++overflow_stats().conversion_saturations;
      return from_raw(kRawMin);
    }
    const double rounded = scaled >= 0.0 ? scaled + 0.5 : scaled - 0.5;
    return from_raw(static_cast<std::int32_t>(rounded));
  }

  static constexpr Fixed from_raw(std::int32_t raw) noexcept {
    Fixed f;
    f.raw_ = raw;
    return f;
  }

  static constexpr Fixed from_int(std::int32_t value) noexcept {
    return from_raw(saturate(static_cast<std::int64_t>(value) << FracBits));
  }

  [[nodiscard]] constexpr std::int32_t raw() const noexcept { return raw_; }

  [[nodiscard]] double to_double() const noexcept {
    return static_cast<double>(raw_) / static_cast<double>(kOne);
  }

  static constexpr Fixed zero() noexcept { return from_raw(0); }
  static constexpr Fixed one() noexcept {
    return from_raw(static_cast<std::int32_t>(kOne));
  }
  static constexpr Fixed max() noexcept { return from_raw(kRawMax); }
  static constexpr Fixed min() noexcept { return from_raw(kRawMin); }
  /// Smallest positive representable increment (1 ulp).
  static constexpr Fixed epsilon() noexcept { return from_raw(1); }

  friend Fixed operator+(Fixed a, Fixed b) noexcept {
    const std::int64_t sum =
        static_cast<std::int64_t>(a.raw_) + static_cast<std::int64_t>(b.raw_);
    if (sum > kRawMax || sum < kRawMin) ++overflow_stats().add_saturations;
    return from_raw(saturate(sum));
  }

  friend Fixed operator-(Fixed a, Fixed b) noexcept {
    const std::int64_t diff =
        static_cast<std::int64_t>(a.raw_) - static_cast<std::int64_t>(b.raw_);
    if (diff > kRawMax || diff < kRawMin) ++overflow_stats().add_saturations;
    return from_raw(saturate(diff));
  }

  friend Fixed operator*(Fixed a, Fixed b) noexcept {
    std::int64_t product =
        static_cast<std::int64_t>(a.raw_) * static_cast<std::int64_t>(b.raw_);
    // Round to nearest before discarding FracBits. Adding the half-ulp
    // bias and arithmetic-shifting implements round-half-up for both
    // signs (Vivado HLS AP_RND semantics); subtracting for negatives
    // would corrupt exact products.
    const std::int64_t bias = std::int64_t{1} << (FracBits - 1);
    product += bias;
    const std::int64_t shifted = product >> FracBits;
    if (shifted > kRawMax || shifted < kRawMin) {
      ++overflow_stats().mul_saturations;
    }
    return from_raw(saturate(shifted));
  }

  friend Fixed operator/(Fixed a, Fixed b) noexcept {
    if (b.raw_ == 0) {
      ++overflow_stats().div_by_zero;
      return a.raw_ >= 0 ? max() : min();
    }
    const std::int64_t widened = static_cast<std::int64_t>(a.raw_)
                                 << FracBits;
    const std::int64_t quotient = widened / static_cast<std::int64_t>(b.raw_);
    if (quotient > kRawMax || quotient < kRawMin) {
      ++overflow_stats().div_saturations;
    }
    return from_raw(saturate(quotient));
  }

  constexpr Fixed operator-() const noexcept {
    if (raw_ == kRawMin) return max();  // |INT32_MIN| saturates
    return from_raw(-raw_);
  }

  Fixed& operator+=(Fixed other) noexcept { return *this = *this + other; }
  Fixed& operator-=(Fixed other) noexcept { return *this = *this - other; }
  Fixed& operator*=(Fixed other) noexcept { return *this = *this * other; }
  Fixed& operator/=(Fixed other) noexcept { return *this = *this / other; }

  constexpr auto operator<=>(const Fixed&) const noexcept = default;

 private:
  static constexpr std::int32_t saturate(std::int64_t wide) noexcept {
    if (wide > kRawMax) return kRawMax;
    if (wide < kRawMin) return kRawMin;
    return static_cast<std::int32_t>(wide);
  }

  std::int32_t raw_ = 0;
};

/// The paper's format: 32-bit word, 20 fractional bits ("Q20", §4.2).
using Q20 = Fixed<20>;

template <int F>
Fixed<F> abs(Fixed<F> x) noexcept {
  return x < Fixed<F>::zero() ? -x : x;
}

template <int F>
Fixed<F> clamp(Fixed<F> x, Fixed<F> lo, Fixed<F> hi) noexcept {
  if (x < lo) return lo;
  if (x > hi) return hi;
  return x;
}

/// ReLU, the paper's activation (G(x) = x if x >= 0 else 0).
template <int F>
Fixed<F> relu(Fixed<F> x) noexcept {
  return x < Fixed<F>::zero() ? Fixed<F>::zero() : x;
}

/// Newton–Raphson reciprocal: models an FPGA divider that computes 1/x
/// with multiply-only iterations. Exposed for the precision ablation; the
/// seq_train datapath uses the exact operator/ (a pipelined divider).
template <int F>
Fixed<F> reciprocal_nr(Fixed<F> x, int iterations = 4) noexcept {
  using Fx = Fixed<F>;
  if (x.raw() == 0) {
    ++overflow_stats().div_by_zero;
    return Fx::max();
  }
  const bool negative = x < Fx::zero();
  Fx ax = abs(x);
  // Scale ax into [0.5, 1) by counting leading bits, seed with the
  // classic linear estimate 48/17 - 32/17 * ax, then iterate
  // y <- y * (2 - ax * y); finally undo the scaling.
  int shift = 0;
  while (ax >= Fx::one()) {
    ax = Fx::from_raw(ax.raw() >> 1);
    ++shift;
  }
  while (ax.raw() != 0 &&
         ax < Fx::from_double(0.5)) {
    ax = Fx::from_raw(ax.raw() << 1);
    --shift;
  }
  Fx y = Fx::from_double(48.0 / 17.0) - Fx::from_double(32.0 / 17.0) * ax;
  const Fx two = Fx::from_int(2);
  for (int i = 0; i < iterations; ++i) y = y * (two - ax * y);
  // 1/x = (1/ax) >> shift (ax = x * 2^-shift => 1/x = (1/ax) * 2^-shift).
  std::int64_t raw = y.raw();
  if (shift > 0) {
    raw >>= shift;
  } else if (shift < 0) {
    const int up = -shift;
    if (up < 62) raw <<= up;
  }
  if (raw > Fx::kRawMax) raw = Fx::kRawMax;
  Fx out = Fx::from_raw(static_cast<std::int32_t>(raw));
  return negative ? -out : out;
}

}  // namespace oselm::fixed
