#include "fixed/overflow_stats.hpp"

namespace oselm::fixed {

OverflowStats& overflow_stats() noexcept {
  thread_local OverflowStats stats;
  return stats;
}

}  // namespace oselm::fixed
