#include "scenario/spec.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

namespace oselm::scenario {

std::string_view to_string(ScenarioBackend backend) noexcept {
  switch (backend) {
    case ScenarioBackend::kLockstep:
      return "lockstep";
    case ScenarioBackend::kAsync:
      return "async";
    case ScenarioBackend::kRouter:
      return "router";
  }
  return "unknown";
}

namespace {

std::string trim(const std::string& text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && (text[begin] == ' ' || text[begin] == '\t')) ++begin;
  while (end > begin && (text[end - 1] == ' ' || text[end - 1] == '\t')) {
    --end;
  }
  return text.substr(begin, end - begin);
}

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw std::invalid_argument("parse_scenario: line " +
                              std::to_string(line) + ": " + message);
}

std::uint64_t parse_u64(const std::string& value, std::size_t line,
                        const std::string& key) {
  if (value.empty()) fail(line, "empty value for '" + key + "'");
  std::uint64_t out = 0;
  for (const char c : value) {
    if (c < '0' || c > '9') {
      fail(line, "'" + key + "' value '" + value + "' is not an unsigned "
                 "integer");
    }
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (out > (UINT64_MAX - digit) / 10) {
      fail(line, "'" + key + "' value '" + value + "' exceeds 64 bits");
    }
    out = out * 10 + digit;
  }
  return out;
}

double parse_double(const std::string& value, std::size_t line,
                    const std::string& key) {
  if (value.empty()) fail(line, "empty value for '" + key + "'");
  errno = 0;
  char* tail = nullptr;
  const double out = std::strtod(value.c_str(), &tail);
  if (errno != 0 || tail == value.c_str() || *tail != '\0') {
    fail(line, "'" + key + "' value '" + value + "' is not a number");
  }
  return out;
}

std::string format_double(double value) {
  // %.12g round-trips every value a human writes in a spec file while
  // staying readable ("0.05", not "0.050000000000000003"); to_text() is
  // both the round-trip canonical form and the digest input.
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.12g", value);
  return buffer;
}

FaultPlanEntry parse_fault_entry(const std::string& value,
                                 std::size_t line) {
  FaultPlanEntry entry;
  if (value == "none") return entry;
  const std::size_t sep = value.find(':');
  if (sep == std::string::npos || sep == 0 || sep + 1 == value.size()) {
    fail(line, "fault entry '" + value +
               "' (expected none or <kind>:<rate>)");
  }
  entry.kind = value.substr(0, sep);
  if (entry.kind != "drop" && entry.kind != "reorder" &&
      entry.kind != "throw" && entry.kind != "spike") {
    fail(line, "unknown fault kind '" + entry.kind +
               "' (expected drop|reorder|throw|spike)");
  }
  entry.rate = parse_double(value.substr(sep + 1), line, "fault rate");
  if (!(entry.rate >= 0.0 && entry.rate <= 1.0)) {
    fail(line, "fault rate " + format_double(entry.rate) +
               " outside [0, 1]");
  }
  return entry;
}

}  // namespace

void ScenarioSpec::validate() const {
  const auto invalid = [this](const std::string& message) {
    throw std::invalid_argument("ScenarioSpec '" + name + "': " + message);
  };
  if (name.empty()) invalid("empty name");
  if (env_ids.empty()) invalid("no env entries (need at least one)");
  if (sessions == 0) invalid("sessions == 0");
  if (bursts == 0) invalid("bursts == 0");
  if (episodes_per_session == 0) invalid("episodes_per_session == 0");
  if (max_steps_per_episode == 0) invalid("max_steps_per_episode == 0");
  if (max_live_sessions == 0) invalid("max_live_sessions == 0");
  if (hidden_units == 0) invalid("hidden_units == 0");
  if (replicas == 0) invalid("replicas == 0");
  if (backend_id.empty()) invalid("empty backend_id");
  if (!(train_fraction >= 0.0 && train_fraction <= 1.0)) {
    invalid("train_fraction " + format_double(train_fraction) +
            " outside [0, 1]");
  }
  if (stall_ms > 0 && stall_at_burst >= bursts) {
    invalid("stall_at_burst " + std::to_string(stall_at_burst) +
            " out of range (bursts = " + std::to_string(bursts) + ")");
  }
  if (stall_ms > 0 && backend == ScenarioBackend::kRouter &&
      stall_replica >= replicas) {
    invalid("stall_replica " + std::to_string(stall_replica) +
            " out of range (replicas = " + std::to_string(replicas) + ")");
  }
  if (stop_deadline_ms == 0) invalid("stop_deadline_ms == 0");
  if (backend_fault_kind != "none" && backend_fault_kind != "throw" &&
      backend_fault_kind != "stall" && backend_fault_kind != "nan") {
    invalid("unknown backend_fault kind '" + backend_fault_kind +
            "' (expected none|throw|stall|nan)");
  }
  if (!(backend_fault_rate >= 0.0 && backend_fault_rate <= 1.0)) {
    invalid("backend_fault rate " + format_double(backend_fault_rate) +
            " outside [0, 1]");
  }
  if (backend_fault_kind != "none" &&
      backend == ScenarioBackend::kLockstep) {
    invalid("backend_fault requires the async or router tier");
  }
  if (backend_fault_kind != "none" && backend == ScenarioBackend::kRouter &&
      backend_fault_replica >= replicas) {
    invalid("backend_fault_replica " + std::to_string(backend_fault_replica) +
            " out of range (replicas = " + std::to_string(replicas) + ")");
  }
  if (kill_planned) {
    if (backend != ScenarioBackend::kRouter) {
      invalid("kill requires the router tier");
    }
    if (kill_replica >= replicas) {
      invalid("kill replica " + std::to_string(kill_replica) +
              " out of range (replicas = " + std::to_string(replicas) + ")");
    }
    if (kill_at_burst >= bursts) {
      invalid("kill burst " + std::to_string(kill_at_burst) +
              " out of range (bursts = " + std::to_string(bursts) + ")");
    }
  }
  if (admission_wait_us > 0 && backend != ScenarioBackend::kRouter) {
    invalid("admission_wait_us requires the router tier");
  }
  if (sync_every_updates > 0 && backend != ScenarioBackend::kRouter) {
    invalid("sync_every_updates requires the router tier");
  }
  if (prime && backend == ScenarioBackend::kLockstep) {
    invalid("prime requires the async or router tier");
  }
}

std::string ScenarioSpec::to_text() const {
  std::ostringstream out;
  out << "name = " << name << "\n";
  out << "backend = " << to_string(backend) << "\n";
  out << "seed = " << seed << "\n";
  for (const std::string& id : env_ids) out << "env = " << id << "\n";
  for (const FaultPlanEntry& entry : faults) {
    if (entry.kind == "none") {
      out << "fault = none\n";
    } else {
      out << "fault = " << entry.kind << ":" << format_double(entry.rate)
          << "\n";
    }
  }
  out << "train_fraction = " << format_double(train_fraction) << "\n";
  out << "sessions = " << sessions << "\n";
  out << "episodes_per_session = " << episodes_per_session << "\n";
  out << "max_steps_per_episode = " << max_steps_per_episode << "\n";
  out << "bursts = " << bursts << "\n";
  out << "burst_gap_ms = " << burst_gap_ms << "\n";
  out << "affinity_keys = " << affinity_keys << "\n";
  out << "backend_id = " << backend_id << "\n";
  out << "hidden_units = " << hidden_units << "\n";
  out << "max_live_sessions = " << max_live_sessions << "\n";
  out << "worker_threads = " << worker_threads << "\n";
  out << "replicas = " << replicas << "\n";
  out << "sync_every_updates = " << sync_every_updates << "\n";
  out << "stall_ms = " << stall_ms << "\n";
  out << "stall_replica = " << stall_replica << "\n";
  out << "stall_at_burst = " << stall_at_burst << "\n";
  out << "stop_after_ms = " << stop_after_ms << "\n";
  out << "stop_deadline_ms = " << stop_deadline_ms << "\n";
  if (backend_fault_kind == "none") {
    out << "backend_fault = none\n";
  } else {
    out << "backend_fault = " << backend_fault_kind << ":"
        << format_double(backend_fault_rate) << "\n";
  }
  out << "backend_fault_replica = " << backend_fault_replica << "\n";
  if (kill_planned) {
    out << "kill = " << kill_replica << "@" << kill_at_burst << "\n";
  } else {
    out << "kill = none\n";
  }
  out << "admission_wait_us = " << admission_wait_us << "\n";
  out << "prime = " << (prime ? 1 : 0) << "\n";
  return out.str();
}

ScenarioSpec parse_scenario(const std::string& text) {
  ScenarioSpec spec;
  spec.env_ids.clear();
  std::set<std::string> seen;  // scalar keys must appear at most once
  std::istringstream stream(text);
  std::string raw;
  std::size_t line_number = 0;
  while (std::getline(stream, raw)) {
    ++line_number;
    const std::size_t comment = raw.find('#');
    if (comment != std::string::npos) raw.erase(comment);
    const std::string line = trim(raw);
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      fail(line_number, "expected 'key = value', got '" + line + "'");
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty()) fail(line_number, "empty key");
    if (value.empty()) fail(line_number, "empty value for '" + key + "'");

    // Repeated keys: the env mix and the fault plan.
    if (key == "env") {
      spec.env_ids.push_back(value);
      continue;
    }
    if (key == "fault") {
      spec.faults.push_back(parse_fault_entry(value, line_number));
      continue;
    }

    if (!seen.insert(key).second) {
      fail(line_number, "duplicate key '" + key + "'");
    }
    if (key == "name") {
      spec.name = value;
    } else if (key == "backend") {
      if (value == "lockstep") {
        spec.backend = ScenarioBackend::kLockstep;
      } else if (value == "async") {
        spec.backend = ScenarioBackend::kAsync;
      } else if (value == "router") {
        spec.backend = ScenarioBackend::kRouter;
      } else {
        fail(line_number, "unknown backend '" + value +
                          "' (expected lockstep|async|router)");
      }
    } else if (key == "seed") {
      spec.seed = parse_u64(value, line_number, key);
    } else if (key == "train_fraction") {
      spec.train_fraction = parse_double(value, line_number, key);
      if (!(spec.train_fraction >= 0.0 && spec.train_fraction <= 1.0)) {
        fail(line_number, "train_fraction " + value + " outside [0, 1]");
      }
    } else if (key == "sessions") {
      spec.sessions = parse_u64(value, line_number, key);
    } else if (key == "episodes_per_session") {
      spec.episodes_per_session = parse_u64(value, line_number, key);
    } else if (key == "max_steps_per_episode") {
      spec.max_steps_per_episode = parse_u64(value, line_number, key);
    } else if (key == "bursts") {
      spec.bursts = parse_u64(value, line_number, key);
    } else if (key == "burst_gap_ms") {
      spec.burst_gap_ms = parse_u64(value, line_number, key);
    } else if (key == "affinity_keys") {
      spec.affinity_keys = parse_u64(value, line_number, key);
    } else if (key == "backend_id") {
      spec.backend_id = value;
    } else if (key == "hidden_units") {
      spec.hidden_units = parse_u64(value, line_number, key);
    } else if (key == "max_live_sessions") {
      spec.max_live_sessions = parse_u64(value, line_number, key);
    } else if (key == "worker_threads") {
      spec.worker_threads = parse_u64(value, line_number, key);
    } else if (key == "replicas") {
      spec.replicas = parse_u64(value, line_number, key);
    } else if (key == "sync_every_updates") {
      spec.sync_every_updates = parse_u64(value, line_number, key);
    } else if (key == "stall_ms") {
      spec.stall_ms = parse_u64(value, line_number, key);
    } else if (key == "stall_replica") {
      spec.stall_replica = parse_u64(value, line_number, key);
    } else if (key == "stall_at_burst") {
      spec.stall_at_burst = parse_u64(value, line_number, key);
    } else if (key == "stop_after_ms") {
      spec.stop_after_ms = parse_u64(value, line_number, key);
    } else if (key == "stop_deadline_ms") {
      spec.stop_deadline_ms = parse_u64(value, line_number, key);
    } else if (key == "backend_fault") {
      if (value == "none") {
        spec.backend_fault_kind = "none";
        spec.backend_fault_rate = 0.0;
      } else {
        const std::size_t sep = value.find(':');
        if (sep == std::string::npos || sep == 0 ||
            sep + 1 == value.size()) {
          fail(line_number, "backend_fault '" + value +
                            "' (expected none or <kind>:<rate>)");
        }
        spec.backend_fault_kind = value.substr(0, sep);
        if (spec.backend_fault_kind != "throw" &&
            spec.backend_fault_kind != "stall" &&
            spec.backend_fault_kind != "nan") {
          fail(line_number, "unknown backend_fault kind '" +
                            spec.backend_fault_kind +
                            "' (expected throw|stall|nan)");
        }
        spec.backend_fault_rate = parse_double(value.substr(sep + 1),
                                               line_number,
                                               "backend_fault rate");
        if (!(spec.backend_fault_rate >= 0.0 &&
              spec.backend_fault_rate <= 1.0)) {
          fail(line_number, "backend_fault rate " +
                            format_double(spec.backend_fault_rate) +
                            " outside [0, 1]");
        }
      }
    } else if (key == "backend_fault_replica") {
      spec.backend_fault_replica = parse_u64(value, line_number, key);
    } else if (key == "kill") {
      if (value == "none") {
        spec.kill_planned = false;
      } else {
        const std::size_t sep = value.find('@');
        if (sep == std::string::npos || sep == 0 ||
            sep + 1 == value.size()) {
          fail(line_number, "kill '" + value +
                            "' (expected none or <replica>@<burst>)");
        }
        spec.kill_planned = true;
        spec.kill_replica =
            parse_u64(value.substr(0, sep), line_number, "kill replica");
        spec.kill_at_burst =
            parse_u64(value.substr(sep + 1), line_number, "kill burst");
      }
    } else if (key == "admission_wait_us") {
      spec.admission_wait_us = parse_u64(value, line_number, key);
    } else if (key == "prime") {
      const std::uint64_t flag = parse_u64(value, line_number, key);
      if (flag > 1) {
        fail(line_number, "'prime' value '" + value + "' is not 0 or 1");
      }
      spec.prime = flag == 1;
    } else {
      fail(line_number, "unknown key '" + key + "'");
    }
  }
  spec.validate();
  return spec;
}

ScenarioSpec load_scenario_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    throw std::runtime_error("load_scenario_file: cannot read '" + path +
                             "'");
  }
  std::ostringstream content;
  content << file.rdbuf();
  return parse_scenario(content.str());
}

}  // namespace oselm::scenario
