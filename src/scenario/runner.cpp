#include "scenario/runner.hpp"

#include <fstream>
#include <stdexcept>
#include <utility>

namespace oselm::scenario {

ScenarioRunner::ScenarioRunner(ScenarioSpec spec)
    : spec_(std::move(spec)), schedule_(expand_schedule(spec_)) {}

ScenarioVerdict ScenarioRunner::run() const {
  return run_chaos(spec_, schedule_);
}

void write_verdict(const ScenarioVerdict& verdict,
                   const std::string& path) {
  std::ofstream file(path);
  if (!file) {
    throw std::runtime_error("write_verdict: cannot write '" + path + "'");
  }
  file << verdict.to_json();
  if (!file) {
    throw std::runtime_error("write_verdict: write to '" + path +
                             "' failed");
  }
}

void write_health_timeline(const ScenarioVerdict& verdict,
                           const std::string& path) {
  if (verdict.health_json.empty()) {
    throw std::runtime_error(
        "write_health_timeline: verdict for '" + verdict.scenario +
        "' carries no health data (router scenarios only)");
  }
  std::ofstream file(path);
  if (!file) {
    throw std::runtime_error("write_health_timeline: cannot write '" +
                             path + "'");
  }
  file << verdict.health_json;
  if (!file) {
    throw std::runtime_error("write_health_timeline: write to '" + path +
                             "' failed");
  }
}

}  // namespace oselm::scenario
