// The shipped scenario pack: named, bounded chaos workloads.
//
// Each builtin is a complete ScenarioSpec tuned to finish in seconds even
// under TSan/ASan (small envs, short budgets), so the whole pack is the
// CI chaos-soak gauntlet — and, because every spec is deterministic under
// its seed, a reproducible serving benchmark workload. The pack covers
// the failure modes the serving stack claims to survive:
//
//   churn-storm          async: join bursts far beyond the admission cap
//   latency-spike        async: seeded kSpike faults on evaluate traffic
//   env-fault-mix        async: drop/reorder/throw mix, train + eval
//   backend-stall        async: a run_exclusive sleep on THE batch thread
//   router-replica-stall router: the same sleep on one replica of three
//   mixed-train-eval     router: train/eval mix with colliding affinity
//                        keys (duplicate-id rejections) and a mid-run stop
//   lockstep-baseline    lockstep: the same spec shape on rl::QServer
#pragma once

#include <string>
#include <vector>

#include "scenario/spec.hpp"

namespace oselm::scenario {

/// Names of every builtin, in pack order.
[[nodiscard]] std::vector<std::string> builtin_scenarios();

/// The builtin spec registered under `name`; throws
/// std::invalid_argument (listing the known names) for unknown names.
[[nodiscard]] ScenarioSpec builtin_scenario(const std::string& name);

}  // namespace oselm::scenario
