#include "scenario/schedule.hpp"

#include <cstdio>
#include <sstream>

#include "util/hash.hpp"
#include "util/rng.hpp"

namespace oselm::scenario {

namespace {

std::string format_rate(double rate) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.12g", rate);
  return buffer;
}

}  // namespace

std::string ScenarioSchedule::to_text() const {
  std::ostringstream out;
  out << "sessions = " << total_sessions << "\n";
  if (stall_planned) {
    out << "stall before burst " << stall_before_burst << ": "
        << stall_ms << " ms on replica " << stall_replica << "\n";
  }
  if (backend_fault_planned) {
    out << "backend fault on replica " << backend_fault_replica << ": "
        << backend_fault_kind << ":" << format_rate(backend_fault_rate)
        << " seed=" << backend_fault_seed << "\n";
  }
  if (kill_planned) {
    out << "kill replica " << kill_replica << " before burst "
        << kill_before_burst << "\n";
  }
  for (const PlannedBurst& burst : bursts) {
    out << "burst at " << burst.at_ms << " ms (" << burst.sessions.size()
        << " sessions)\n";
    for (const PlannedSession& s : burst.sessions) {
      out << "  #" << s.index << " " << (s.train ? "train" : "eval") << " "
          << s.env_id << " env_seed=" << s.env_seed
          << " agent_seed=" << s.agent_seed << " key=" << s.affinity_key
          << "\n";
    }
  }
  return out.str();
}

ScenarioSchedule expand_schedule(const ScenarioSpec& spec) {
  spec.validate();
  ScenarioSchedule schedule;
  schedule.total_sessions = spec.sessions;
  schedule.stall_planned = spec.stall_ms > 0;
  schedule.stall_before_burst = spec.stall_at_burst;
  schedule.stall_ms = spec.stall_ms;
  schedule.stall_replica =
      spec.backend == ScenarioBackend::kRouter ? spec.stall_replica : 0;

  // The dedicated schedule stream: every draw below comes from here, in
  // this exact order, so the expansion is a pure function of the master
  // seed. Nothing else may consume from it.
  util::Rng rng(spec.seed);

  schedule.bursts.resize(spec.bursts);
  for (std::size_t b = 0; b < spec.bursts; ++b) {
    schedule.bursts[b].at_ms = spec.burst_gap_ms * b;
  }
  for (std::size_t k = 0; k < spec.sessions; ++k) {
    PlannedSession session;
    session.index = k;
    // Fixed per-session draw order (env, fault, fault seed, mode, seeds,
    // key): inserting a draw for one feature must not silently reshuffle
    // the others, so every branch below still consumes its draws.
    std::string env_id =
        spec.env_ids[rng.uniform_index(spec.env_ids.size())];
    if (!spec.faults.empty()) {
      const FaultPlanEntry& entry =
          spec.faults[rng.uniform_index(spec.faults.size())];
      const std::uint64_t fault_seed = rng();
      if (entry.kind != "none") {
        env_id = "fault:" + entry.kind + ":" + format_rate(entry.rate) +
                 ":" + std::to_string(fault_seed) + ":" + env_id;
      }
    }
    session.env_id = std::move(env_id);
    session.train = rng.bernoulli(spec.train_fraction);
    session.env_seed = rng();
    session.agent_seed = rng();
    // snprintf instead of `"s" + std::to_string(...)`: the operator+
    // form trips GCC 12's -Wrestrict false positive (PR105651) at -O2.
    char key[32];
    if (spec.affinity_keys == 0) {
      std::snprintf(key, sizeof(key), "s%zu", k);
    } else {
      std::snprintf(key, sizeof(key), "k%zu",
                    rng.uniform_index(spec.affinity_keys));
    }
    session.affinity_key = key;
    // Sessions deal round-robin into bursts, so every burst is a mass
    // join of ~sessions/bursts and early bursts absorb the remainder.
    schedule.bursts[k % spec.bursts].sessions.push_back(
        std::move(session));
  }

  // Post-loop draws: the backend-fault seed comes AFTER every per-session
  // draw (and only when a fault is planned), so turning the backend-fault
  // axis on or off never reshuffles the session plan of an existing spec.
  schedule.backend_fault_planned = spec.backend_fault_kind != "none";
  if (schedule.backend_fault_planned) {
    schedule.backend_fault_kind = spec.backend_fault_kind;
    schedule.backend_fault_rate = spec.backend_fault_rate;
    schedule.backend_fault_seed = rng();
    schedule.backend_fault_replica =
        spec.backend == ScenarioBackend::kRouter ? spec.backend_fault_replica
                                                 : 0;
  }
  schedule.kill_planned = spec.kill_planned;
  if (schedule.kill_planned) {
    schedule.kill_replica = spec.kill_replica;
    schedule.kill_before_burst = spec.kill_at_burst;
  }

  schedule.digest = util::fnv1a(schedule.to_text());
  return schedule;
}

}  // namespace oselm::scenario
