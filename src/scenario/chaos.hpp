// Chaos driver: executes an expanded ScenarioSchedule against a serving
// tier and checks conservation invariants.
//
// The driver is the scenario subsystem's muscle: it replays the schedule's
// mass-join bursts against rl::QServer / rl::AsyncQServer /
// rl::RouterQServer, injects the planned backend stall (a run_exclusive
// sleep occupying one batch thread — the chosen replica's, behind the
// router), lets fault-wrapped environments fail mid-run, attributes every
// admission refusal by its structured reason (capacity vs stopping vs
// duplicate id), and — after stopping the tier under a watchdog — asserts
// the invariants that must hold under ANY timing:
//
//   sessions-conserved   every attempted join is admitted or rejected
//                        with a reason, and every admitted session
//                        delivers exactly one result
//   server-accounting    the tier's own admitted/retired counters agree
//                        with the driver's ledger
//   steps-accounted      the tier's step counter equals the merged step
//                        latency histogram count (no step lost a sample)
//   placement-consistent (router) every result names a real replica and
//                        the per-replica admission counters sum up
//                        (rescued sessions admit once per placement)
//   no-duplicate-results every admitted tier id is distinct and delivers
//                        exactly one result (rescue/replacement must not
//                        mint duplicate ids)
//   health-monotone      (router) every replica's health timeline is
//                        monotone within an incarnation (healthy ->
//                        degraded -> failed -> replaced) and every new
//                        incarnation starts healthy
//   rescued-complete     (router, planned kill, no mid-run stop) every
//                        rescued session completed on a survivor and no
//                        session was abandoned
//   replacement-seeded   (router, planned kill) at least one replacement
//                        happened; with prime, every replacement was
//                        seeded from fleet state, never served fresh
//   stop-returned        stop() returned within the spec's deadline
//   post-stop-rejects    a join after stop() raises rl::AdmissionError
//                        with reason kStopping — never a hang or a bare
//                        error
//
// The verdict separates a DETERMINISTIC core (scenario identity, schedule
// digest, invariant outcomes — identical across runs of the same spec +
// seed) from a "telemetry" subtree (counts, latencies, wall clock — all
// timing-dependent); ScenarioVerdict::deterministic_json() is the core
// alone, which the reproducibility tests compare byte-for-byte.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/schedule.hpp"
#include "scenario/spec.hpp"
#include "util/latency_histogram.hpp"

namespace oselm::scenario {

struct InvariantResult {
  std::string name;
  bool pass = false;
  std::string detail;  ///< the checked identity, numbers filled in
};

struct ScenarioVerdict {
  // Deterministic core.
  std::string scenario;
  std::string backend_tier;  ///< "lockstep" | "async" | "router"
  std::string backend_id;
  std::uint64_t seed = 0;
  std::uint64_t schedule_digest = 0;
  std::size_t planned_sessions = 0;
  std::vector<InvariantResult> invariants;
  bool pass = false;  ///< every invariant passed

  // Telemetry (timing-dependent; the "telemetry" JSON subtree).
  std::uint64_t attempted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected_capacity = 0;
  std::uint64_t rejected_stopping = 0;
  std::uint64_t rejected_duplicate = 0;  ///< driver-side key collisions
  std::uint64_t completed = 0;        ///< ran to budget
  std::uint64_t failed_env = 0;       ///< environment threw (fault or real)
  std::uint64_t failed_backend = 0;   ///< backend threw/NaN'd mid-batch
  std::uint64_t stopped_early = 0;    ///< retired by stop()
  std::uint64_t rescued = 0;          ///< sessions re-placed >= 1 time
  std::uint64_t abandoned = 0;        ///< router gave up rescuing (stats)
  double wall_seconds = 0.0;
  /// Per-phase serving latency, split by what the session was doing.
  util::LatencyHistogram train_step_latency_us;
  util::LatencyHistogram eval_step_latency_us;
  /// The tier's own stats snapshot (AsyncServerStats / RouterStats JSON),
  /// embedded verbatim.
  std::string server_stats_json;
  /// Router only: the per-replica health-timeline JSON
  /// (RouterStats::health_json()), persisted as a standalone
  /// "<name>.health.json" artifact by the runner/CLI. Empty elsewhere.
  std::string health_json;

  /// Full verdict: deterministic core + "telemetry" subtree.
  [[nodiscard]] std::string to_json() const;
  /// Core alone — byte-identical across runs of the same spec + seed.
  [[nodiscard]] std::string deterministic_json() const;
};

/// Runs the schedule against the spec's tier. Throws
/// std::invalid_argument for config-level errors (unknown env/backend
/// ids, a dimension-heterogeneous env mix) — those are spec bugs, not
/// scenario outcomes; everything that happens while serving lands in the
/// verdict instead.
[[nodiscard]] ScenarioVerdict run_chaos(const ScenarioSpec& spec,
                                        const ScenarioSchedule& schedule);

}  // namespace oselm::scenario
