// ScenarioRunner — spec in, verdict out.
//
// The thin orchestration layer the CLI (tools/scenario_runner) and tests
// share: it expands the spec's schedule once (holding the digest the
// verdict reports), runs the chaos driver, and can persist the verdict
// JSON. run() may be called repeatedly — every run replays the SAME
// expanded schedule, which is what makes two runs of one runner the
// reproducibility experiment (identical deterministic_json()).
#pragma once

#include <string>

#include "scenario/chaos.hpp"
#include "scenario/schedule.hpp"
#include "scenario/spec.hpp"

namespace oselm::scenario {

class ScenarioRunner {
 public:
  /// Validates the spec and expands its schedule. Throws
  /// std::invalid_argument on spec errors.
  explicit ScenarioRunner(ScenarioSpec spec);

  [[nodiscard]] const ScenarioSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const ScenarioSchedule& schedule() const noexcept {
    return schedule_;
  }

  /// Executes the schedule against the spec's serving tier.
  [[nodiscard]] ScenarioVerdict run() const;

 private:
  ScenarioSpec spec_;
  ScenarioSchedule schedule_;
};

/// Writes `verdict.to_json()` to `path`; throws std::runtime_error when
/// the file cannot be written.
void write_verdict(const ScenarioVerdict& verdict, const std::string& path);

/// Writes `verdict.health_json` (the router's per-replica health
/// timelines) to `path`. Throws std::runtime_error when the verdict has
/// no health data (non-router tiers) or the file cannot be written —
/// callers gate on `!verdict.health_json.empty()`.
void write_health_timeline(const ScenarioVerdict& verdict,
                           const std::string& path);

}  // namespace oselm::scenario
