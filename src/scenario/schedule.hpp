// Deterministic schedule expansion: ScenarioSpec -> the exact timeline
// the chaos driver executes.
//
// expand_schedule() is a PURE function of the spec (master seed included):
// it draws every per-session choice — env id from the mix, fault wrapper
// and its per-instance seed, train/eval mode, env seed, agent seed,
// affinity key — from ONE dedicated util::Rng stream seeded by the
// spec's master seed, in a fixed call order. Same spec + seed therefore
// expands to a bit-identical schedule on every run and platform (the
// fault-schedule reproducibility pin in tests/scenario/spec_test.cpp),
// and the expansion never touches any environment's rng.
//
// The digest hashes the schedule's canonical text with util::fnv1a, so
// two verdict JSONs can be compared for "same plan" without shipping the
// plan itself.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/spec.hpp"

namespace oselm::scenario {

/// One fully-resolved session: everything add_session needs.
struct PlannedSession {
  std::size_t index = 0;    ///< global admission order across bursts
  std::string env_id;       ///< final registry id, fault wrapper included
  bool train = false;       ///< kTrain vs kEvaluate (lockstep: ignored)
  std::uint64_t env_seed = 0;
  std::uint64_t agent_seed = 0;
  std::string affinity_key; ///< router placement / duplicate detection
};

/// One mass-join burst at a fixed offset from scenario start.
struct PlannedBurst {
  std::uint64_t at_ms = 0;
  std::vector<PlannedSession> sessions;
};

struct ScenarioSchedule {
  std::vector<PlannedBurst> bursts;
  std::size_t total_sessions = 0;
  bool stall_planned = false;
  std::size_t stall_before_burst = 0;  ///< stall launches before this burst
  std::uint64_t stall_ms = 0;
  std::size_t stall_replica = 0;
  /// Backend-fault plan: the serving backend id gets wrapped as
  /// "fault:<kind>:<rate>:<seed>:<backend_id>" with a per-run seed drawn
  /// from the schedule stream (AFTER the per-session draws, so adding a
  /// backend fault to a spec never reshuffles its session plan).
  bool backend_fault_planned = false;
  std::string backend_fault_kind;
  double backend_fault_rate = 0.0;
  std::uint64_t backend_fault_seed = 0;
  std::size_t backend_fault_replica = 0;  ///< router: faulted replica
  /// Replica-kill event: kill_replica hard-killed before this burst.
  bool kill_planned = false;
  std::size_t kill_replica = 0;
  std::size_t kill_before_burst = 0;
  /// util::fnv1a over to_text() — the reproducibility fingerprint the
  /// verdict JSON reports.
  std::uint64_t digest = 0;

  /// Canonical human-readable listing (one line per session/burst/stall);
  /// the digest input. Deterministic by construction.
  [[nodiscard]] std::string to_text() const;
};

/// Expands `spec` (which must already validate()) into its schedule.
[[nodiscard]] ScenarioSchedule expand_schedule(const ScenarioSpec& spec);

}  // namespace oselm::scenario
