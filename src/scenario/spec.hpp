// ScenarioSpec — declarative workload + chaos description.
//
// A scenario is everything the chaos harness needs to reproduce a serving
// workload from a single file: which backend tier to drive (lockstep
// QServer, AsyncQServer, RouterQServer), an environment mix (env::registry
// ids, modifiers included), a fault plan, a session churn schedule (timed
// mass-join bursts with a train/eval mode mix), step/duration budgets,
// and ONE master seed. Every random choice the harness makes — which env
// a session draws, whether it trains or evaluates, its env/agent seeds,
// its fault wrapper's per-instance seed — derives from that master seed
// through a dedicated util::Rng stream (scenario::expand_schedule), so
// the same spec + seed expands to a bit-identical schedule on every run
// and platform, and the scenario rng never perturbs any environment rng.
//
// The on-disk format is intentionally dumb: one "key = value" per line,
// '#' comments, repeated keys for the env mix and fault plan. Parsing is
// STRICT — unknown keys, duplicate scalar keys, malformed numbers, and
// out-of-range values all throw std::invalid_argument naming the line —
// because a silently-ignored typo in a chaos spec means silently not
// testing what you meant to test. parse_scenario(spec.to_text()) == spec
// is pinned by tests/scenario/spec_test.cpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace oselm::scenario {

/// Which serving tier the scenario drives.
enum class ScenarioBackend {
  kLockstep,  ///< rl::QServer — one-shot lockstep run, no churn/stalls
  kAsync,     ///< rl::AsyncQServer — continuous batching, full chaos
  kRouter,    ///< rl::RouterQServer — multi-replica, per-replica stalls
};

/// "lockstep" / "async" / "router" — the spec-file spelling.
[[nodiscard]] std::string_view to_string(ScenarioBackend backend) noexcept;

/// One fault-plan entry: sessions drawing it get their environment
/// wrapped as "fault:<kind>:<rate>:<seed>:<env-id>" with a per-instance
/// seed from the schedule stream. `kind` "none" (rate ignored) leaves the
/// session unwrapped — mix "none" entries in to set the faulty fraction.
struct FaultPlanEntry {
  std::string kind = "none";  ///< none|drop|reorder|throw|spike
  double rate = 0.0;          ///< per-call fault probability in [0, 1]
};

struct ScenarioSpec {
  std::string name = "scenario";
  ScenarioBackend backend = ScenarioBackend::kAsync;
  /// Master seed: the ONLY entropy source for schedule expansion.
  std::uint64_t seed = 2021;

  // Workload shape.
  std::vector<std::string> env_ids;     ///< env mix (>= 1, homogeneous dims)
  std::vector<FaultPlanEntry> faults;   ///< fault plan (empty = no faults)
  double train_fraction = 0.0;          ///< P(session trains) vs evaluates
  std::size_t sessions = 16;            ///< total sessions across bursts
  std::size_t episodes_per_session = 2;
  std::size_t max_steps_per_episode = 40;

  // Churn schedule: `sessions` split over `bursts` mass-joins spaced
  // `burst_gap_ms` apart (leaves happen naturally as budgets complete).
  std::size_t bursts = 4;
  std::uint64_t burst_gap_ms = 2;
  /// 0 = every session gets a unique affinity key; N > 0 draws keys from
  /// an N-sized space, so sessions collide — co-locating on the router
  /// and exercising the driver's duplicate-id rejection.
  std::size_t affinity_keys = 0;

  // Serving tier configuration.
  std::string backend_id = "software";  ///< rl::BackendRegistry id
  std::size_t hidden_units = 32;        ///< N-tilde per backend
  std::size_t max_live_sessions = 8;    ///< per-server admission cap
  std::size_t worker_threads = 2;
  std::size_t replicas = 2;             ///< router only
  /// Router training sync (router only): 0 runs replicas independent
  /// (rl::TrainSyncPolicy::kIndependent); N > 0 turns on periodic
  /// parameter averaging (kPeriodicAverage) every N fleet-wide train
  /// updates — the backend must have the state_sync capability.
  std::uint64_t sync_every_updates = 0;

  // Chaos injections.
  std::uint64_t stall_ms = 0;       ///< backend stall duration (0 = none)
  std::size_t stall_replica = 0;    ///< router: which replica stalls
  std::size_t stall_at_burst = 0;   ///< stall fires just before this burst
  std::uint64_t stop_after_ms = 0;  ///< 0 = wait for retirement; else
                                    ///< deadline-style stop() mid-run
  std::uint64_t stop_deadline_ms = 30000;  ///< stop() watchdog budget

  // Backend-fault axis (async/router only): the serving backend itself is
  // wrapped as "fault:<kind>:<rate>:<seed>:<backend_id>" (rl::FaultBackend)
  // with a per-run seed drawn from the schedule stream. On the router the
  // wrapper applies to ONE replica (backend_fault_replica) in its original
  // incarnation only — a replacement replica always gets the clean
  // backend, which is what makes replacement a recovery.
  std::string backend_fault_kind = "none";  ///< none|throw|stall|nan
  double backend_fault_rate = 0.0;          ///< per-call probability [0, 1]
  std::size_t backend_fault_replica = 0;    ///< router: faulted replica

  // Replica-kill event (router only): kill_replica is hard-killed via
  // RouterQServer::kill_replica just before burst kill_at_burst fires —
  // its live sessions are rescued onto survivors and the slot is
  // replaced. Spec-file form: "kill = none" or "kill = <replica>@<burst>".
  bool kill_planned = false;
  std::size_t kill_replica = 0;
  std::size_t kill_at_burst = 0;

  /// Router bounded-wait admission: a join against a saturated fleet
  /// blocks up to this long for a retirement before kCapacity rejection.
  std::uint64_t admission_wait_us = 0;
  /// Deterministically init_train every backend (paper Eq. 8 on seeded
  /// random data) before the first burst, so evaluate-only scenarios run
  /// a trained Q surface and replica replacements can be state-seeded
  /// from any survivor. async/router only.
  bool prime = false;

  /// Structural validation beyond per-line parsing: at least one env,
  /// bursts/sessions/caps nonzero, stall/replica indices in range.
  /// Throws std::invalid_argument naming the offending field.
  void validate() const;

  /// Canonical spec-file form. parse_scenario(to_text()) reproduces this
  /// spec exactly (the round-trip pin); the schedule digest hashes it.
  [[nodiscard]] std::string to_text() const;
};

/// Parses the "key = value" format described above. Strict: throws
/// std::invalid_argument (naming the line number) on anything it does
/// not fully understand, then runs ScenarioSpec::validate().
[[nodiscard]] ScenarioSpec parse_scenario(const std::string& text);

/// Reads `path` and parses it; throws std::runtime_error when the file
/// cannot be read.
[[nodiscard]] ScenarioSpec load_scenario_file(const std::string& path);

}  // namespace oselm::scenario
