#include "scenario/chaos.hpp"

#include <chrono>
#include <cstdio>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "env/registry.hpp"
#include "linalg/matrix.hpp"
#include "obs/trace.hpp"
#include "rl/async_server.hpp"
#include "rl/backend_registry.hpp"
#include "rl/router.hpp"
#include "rl/serving.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace oselm::scenario {

namespace {

using Clock = std::chrono::steady_clock;

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

struct EnvDims {
  std::size_t state_dim = 0;
  std::size_t action_count = 0;
};

/// Probes every distinct env id in the schedule (construction only —
/// nothing is reset or stepped, so no fault or env rng advances) and
/// requires one common (state, action) shape: every serving tier
/// validates sessions against ONE SimplifiedOutputModel.
EnvDims probe_dims(const ScenarioSchedule& schedule) {
  std::set<std::string> distinct;
  for (const PlannedBurst& burst : schedule.bursts) {
    for (const PlannedSession& s : burst.sessions) distinct.insert(s.env_id);
  }
  EnvDims dims;
  std::string first;
  for (const std::string& id : distinct) {
    const env::EnvironmentPtr probe = env::make_environment(id, 1);
    const std::size_t state = probe->observation_space().dimensions();
    const std::size_t actions = probe->action_space().n;
    if (first.empty()) {
      dims.state_dim = state;
      dims.action_count = actions;
      first = id;
    } else if (state != dims.state_dim || actions != dims.action_count) {
      throw std::invalid_argument(
          "run_chaos: env mix is not dimension-homogeneous: '" + first +
          "' is (" + std::to_string(dims.state_dim) + ", " +
          std::to_string(dims.action_count) + ") but '" + id + "' is (" +
          std::to_string(state) + ", " + std::to_string(actions) + ")");
    }
  }
  return dims;
}

rl::TrainerConfig trainer_for(const ScenarioSpec& spec) {
  rl::TrainerConfig trainer;
  trainer.max_episodes = spec.episodes_per_session;
  trainer.episode_step_cap = spec.max_steps_per_episode;
  // Budget-driven sessions: an unreachable threshold means every session
  // runs its full episode budget, so scenario load is seed-stable.
  trainer.solved_threshold = 1e18;
  trainer.solved_window = 1;
  trainer.reset_interval = 0;  // shared network: §4.3 resets off
  return trainer;
}

rl::BackendConfig backend_for(const ScenarioSpec& spec,
                              const rl::SimplifiedOutputModel& model) {
  rl::BackendConfig backend;
  backend.input_dim = model.input_dim();
  backend.hidden_units = spec.hidden_units;
  backend.seed = spec.seed;
  return backend;
}

/// The schedule's backend-fault plan as a BackendRegistry id: the clean
/// backend wrapped in the seeded rl::FaultBackend modifier.
std::string faulted_backend_id(const ScenarioSpec& spec,
                               const ScenarioSchedule& schedule) {
  char rate[64];
  std::snprintf(rate, sizeof(rate), "%.12g", schedule.backend_fault_rate);
  return "fault:" + schedule.backend_fault_kind + ":" + rate + ":" +
         std::to_string(schedule.backend_fault_seed) + ":" +
         spec.backend_id;
}

/// Paper Eq. 8 initial training on deterministic seeded random data,
/// run on a CLEAN scratch backend and returned as exportable state.
/// Priming every serving backend by IMPORTING this one state gives the
/// whole tier a single Q surface — so evaluate-only schedules run
/// trained policies and replica replacements can be state-seeded from
/// any survivor — and, because import_state is a state-management call,
/// priming succeeds even on a fault-wrapped backend whose serving path
/// (init_train included) is busy injecting failures.
rl::QNetState primed_state(const ScenarioSpec& spec,
                           const rl::SimplifiedOutputModel& model) {
  const rl::OsElmQBackendPtr scratch =
      rl::make_backend(spec.backend_id, backend_for(spec, model));
  util::Rng rng(spec.seed);
  const std::size_t rows = scratch->hidden_units();
  linalg::MatD x(rows, scratch->input_dim());
  linalg::MatD t(rows, 1);
  rng.fill_uniform(x.storage(), -1.0, 1.0);
  rng.fill_uniform(t.storage(), -1.0, 1.0);
  scratch->init_train(x, t);
  return scratch->export_state();
}

rl::AsyncSessionSpec async_spec(const ScenarioSpec& spec,
                                const PlannedSession& planned) {
  rl::AsyncSessionSpec session;
  session.session.env_id = planned.env_id;
  session.session.env_seed = planned.env_seed;
  session.session.agent_seed = planned.agent_seed;
  session.session.trainer = trainer_for(spec);
  session.mode = planned.train ? rl::AsyncSessionMode::kTrain
                               : rl::AsyncSessionMode::kEvaluate;
  return session;
}

void push_invariant(ScenarioVerdict& verdict, std::string name, bool pass,
                    std::string detail) {
  verdict.invariants.push_back(
      InvariantResult{std::move(name), pass, std::move(detail)});
}

/// The tier seam: the burst/stall/collect loop below drives any serving
/// tier through these closures, so async and router share one driver.
struct Tier {
  std::function<std::size_t(const PlannedSession&)> add;
  std::function<rl::AsyncSessionResult(std::size_t)> wait;
  std::function<void()> stop;
  std::function<std::future<void>(std::uint64_t)> stall;
  /// Hard-kills one replica (router only; fires before the planned burst).
  std::function<void(std::size_t)> kill;
  /// Called once per collected result (router: placement accounting).
  std::function<void(const rl::AsyncSessionResult&)> on_result;
  /// Invariants only the tier can check (server counters, placement).
  std::function<void(ScenarioVerdict&)> final_checks;
};

/// stop() under a watchdog: the call runs on a one-lane pool and the
/// driver waits with the spec's deadline. A miss is recorded as a failed
/// invariant, then the driver STILL blocks for completion — tearing down
/// a tier mid-stop would trade a detectable deadlock for undefined
/// behavior, and a TSan/ASan CI job timing out with live stacks is the
/// debugging artifact we actually want from a hung stop().
void watchdog_stop(const ScenarioSpec& spec, Tier& tier,
                   ScenarioVerdict& verdict) {
  util::ThreadPool watchdog(1);
  std::future<void> done = watchdog.submit([&tier] { tier.stop(); });
  const bool returned =
      done.wait_for(std::chrono::milliseconds(spec.stop_deadline_ms)) ==
      std::future_status::ready;
  push_invariant(verdict, "stop-returned", returned,
                 returned ? "stop() returned within " +
                                std::to_string(spec.stop_deadline_ms) + " ms"
                          : "stop() still running after " +
                                std::to_string(spec.stop_deadline_ms) +
                                " ms deadline");
  done.get();
}

void drive_tier(const ScenarioSpec& spec, const ScenarioSchedule& schedule,
                ScenarioVerdict& verdict, Tier& tier) {
  OSELM_TRACE_SPAN("scenario", "drive_tier");
  const Clock::time_point start = Clock::now();
  std::future<void> stall_future;
  std::set<std::string> live_keys;
  std::vector<std::pair<std::size_t, bool>> admitted;  // (tier id, train?)

  std::set<std::size_t> distinct_ids;
  bool duplicate_id = false;

  for (std::size_t b = 0; b < schedule.bursts.size(); ++b) {
    OSELM_TRACE_SPAN("scenario", "burst");
    if (schedule.stall_planned && b == schedule.stall_before_burst) {
      OSELM_TRACE_INSTANT("scenario", "stall_injected");
      stall_future = tier.stall(schedule.stall_ms);
    }
    if (schedule.kill_planned && b == schedule.kill_before_burst &&
        tier.kill) {
      // The planned hard kill: the replica's sessions retire with
      // backend-error and the router rescues them onto survivors while
      // the remaining bursts keep admitting.
      OSELM_TRACE_INSTANT("scenario", "kill_injected");
      tier.kill(schedule.kill_replica);
    }
    const PlannedBurst& burst = schedule.bursts[b];
    std::this_thread::sleep_until(
        start + std::chrono::milliseconds(burst.at_ms));
    for (const PlannedSession& planned : burst.sessions) {
      ++verdict.attempted;
      // Driver-side duplicate detection: one live session per affinity
      // key. Keys stay open until results are collected, so a later
      // burst reusing a key is refused with a structured reason just
      // like a server-side rejection.
      if (!live_keys.insert(planned.affinity_key).second) {
        ++verdict.rejected_duplicate;
        continue;
      }
      try {
        const std::size_t id = tier.add(planned);
        if (!distinct_ids.insert(id).second) duplicate_id = true;
        admitted.emplace_back(id, planned.train);
        ++verdict.admitted;
      } catch (const rl::AdmissionError& e) {
        live_keys.erase(planned.affinity_key);
        if (e.reason() == rl::AdmissionRejectReason::kCapacity) {
          ++verdict.rejected_capacity;
        } else {
          ++verdict.rejected_stopping;
        }
      }
    }
  }

  bool stopped_midrun = false;
  if (spec.stop_after_ms > 0) {
    // Deadline-style run: stop() retires every live session at its next
    // step boundary; results are collected afterwards.
    std::this_thread::sleep_until(
        start + std::chrono::milliseconds(spec.stop_after_ms));
    OSELM_TRACE_SPAN("scenario", "stop");
    watchdog_stop(spec, tier, verdict);
    stopped_midrun = true;
  }
  if (stall_future.valid()) stall_future.get();

  OSELM_TRACE_SPAN("scenario", "collect");
  std::uint64_t collected = 0;
  for (const auto& [id, train] : admitted) {
    rl::AsyncSessionResult result = tier.wait(id);
    ++collected;
    // Cause-based classification: backend failures (injected faults, NaN
    // detections, kills whose rescue was abandoned) are attributed apart
    // from the session's own environment failing.
    switch (result.cause) {
      case rl::SessionEndCause::kCompleted:
        ++verdict.completed;
        break;
      case rl::SessionEndCause::kStopped:
        ++verdict.stopped_early;
        break;
      case rl::SessionEndCause::kEnvError:
        ++verdict.failed_env;
        break;
      case rl::SessionEndCause::kBackendError:
        ++verdict.failed_backend;
        break;
    }
    if (result.rescues > 0) ++verdict.rescued;
    (train ? verdict.train_step_latency_us : verdict.eval_step_latency_us)
        .merge(result.step_latency_us);
    if (tier.on_result) tier.on_result(result);
  }
  if (!stopped_midrun) watchdog_stop(spec, tier, verdict);

  // Post-stop probe: a join after stop() must be refused with the
  // structured kStopping reason — never admitted, never a bare error,
  // never a hang. Probe admissions stay out of the telemetry counters.
  {
    bool pass = false;
    std::string detail;
    const PlannedSession& probe = schedule.bursts.front().sessions.front();
    try {
      tier.add(probe);
      detail = "admission unexpectedly succeeded after stop()";
    } catch (const rl::AdmissionError& e) {
      pass = e.reason() == rl::AdmissionRejectReason::kStopping;
      detail = pass ? "AdmissionError(kStopping)"
                    : "AdmissionError with wrong reason '" +
                          std::string(to_string(e.reason())) + "'";
    } catch (const std::exception& e) {
      detail = std::string("non-structured exception: ") + e.what();
    }
    push_invariant(verdict, "post-stop-rejects", pass, detail);
  }

  const std::uint64_t rejected = verdict.rejected_capacity +
                                 verdict.rejected_stopping +
                                 verdict.rejected_duplicate;
  push_invariant(
      verdict, "sessions-conserved",
      verdict.attempted == verdict.admitted + rejected &&
          collected == verdict.admitted,
      "attempted " + std::to_string(verdict.attempted) + " == admitted " +
          std::to_string(verdict.admitted) + " + rejected " +
          std::to_string(rejected) + "; results " +
          std::to_string(collected));
  // Rescues re-place a session but must never mint a second result id:
  // every admitted tier id is distinct and delivers exactly one result.
  push_invariant(verdict, "no-duplicate-results",
                 !duplicate_id && collected == verdict.admitted,
                 std::to_string(verdict.admitted) +
                     " admitted ids all distinct, " +
                     std::to_string(collected) +
                     " results claimed exactly once");
  if (tier.final_checks) tier.final_checks(verdict);

  verdict.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
}

/// `extra_admissions`: the router's successful rescues — every rescue
/// re-admits an already-counted session on a survivor replica, so the
/// tier-side admission/retirement ledgers legitimately exceed the
/// driver's by exactly that amount.
void check_server_accounting(ScenarioVerdict& verdict,
                             const rl::AsyncServerStats& stats,
                             std::uint64_t extra_admissions = 0) {
  const std::uint64_t expected = verdict.admitted + extra_admissions;
  push_invariant(
      verdict, "server-accounting",
      stats.sessions_admitted == expected &&
          stats.sessions_retired == expected,
      "server admitted " + std::to_string(stats.sessions_admitted) +
          ", retired " + std::to_string(stats.sessions_retired) +
          "; driver admitted " + std::to_string(verdict.admitted) +
          " + rescues " + std::to_string(extra_admissions));
  push_invariant(
      verdict, "steps-accounted",
      stats.steps == stats.step_latency_us.count(),
      "steps " + std::to_string(stats.steps) + " == latency samples " +
          std::to_string(stats.step_latency_us.count()));
}

ScenarioVerdict run_lockstep(const ScenarioSpec& spec,
                             const ScenarioSchedule& schedule,
                             ScenarioVerdict verdict) {
  const EnvDims dims = probe_dims(schedule);
  const rl::SimplifiedOutputModel model(dims.state_dim, dims.action_count);
  rl::QServer server(
      rl::make_backend(spec.backend_id, backend_for(spec, model)), model,
      spec.worker_threads);
  const Clock::time_point start = Clock::now();
  // Lockstep is the baseline tier: no churn, no stalls, no mid-run stop —
  // every planned session joins up front and one run() drives them all,
  // so specs double as reproducible lockstep benchmark workloads. The
  // burst/stall/stop fields are ignored here (documented in the README).
  for (const PlannedBurst& burst : schedule.bursts) {
    for (const PlannedSession& planned : burst.sessions) {
      rl::ServingSessionSpec session;
      session.env_id = planned.env_id;
      session.env_seed = planned.env_seed;
      session.agent_seed = planned.agent_seed;
      session.trainer = trainer_for(spec);
      server.add_session(session);
      ++verdict.attempted;
      ++verdict.admitted;
    }
  }
  bool ran = false;
  std::string error;
  rl::QServerResult result;
  try {
    result = server.run();
    ran = true;
  } catch (const std::exception& e) {
    // A throw-fault env aborts the whole lockstep tick loop — which is
    // exactly why chaos belongs on the async tiers; surface it as a
    // verdict failure, not a crash.
    error = e.what();
  }
  push_invariant(verdict, "lockstep-run-completed", ran,
                 ran ? "run() completed" : "run() threw: " + error);
  push_invariant(verdict, "sessions-conserved",
                 ran && result.sessions.size() == verdict.admitted,
                 "admitted " + std::to_string(verdict.admitted) +
                     "; results " + std::to_string(result.sessions.size()));
  verdict.completed = result.sessions.size();
  verdict.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  char stats[256];
  std::snprintf(stats, sizeof(stats),
                "{\"ticks\": %llu, \"coalesced_calls\": %llu, "
                "\"coalesced_rows\": %llu, \"mean_batch_rows\": %.3f}",
                static_cast<unsigned long long>(result.ticks),
                static_cast<unsigned long long>(result.coalesced_calls),
                static_cast<unsigned long long>(result.coalesced_rows),
                result.mean_batch_rows());
  verdict.server_stats_json = stats;
  return verdict;
}

ScenarioVerdict run_async(const ScenarioSpec& spec,
                          const ScenarioSchedule& schedule,
                          ScenarioVerdict verdict) {
  const EnvDims dims = probe_dims(schedule);
  const rl::SimplifiedOutputModel model(dims.state_dim, dims.action_count);
  rl::AsyncQServerConfig config;
  config.name = spec.name;
  config.worker_threads = spec.worker_threads;
  config.max_live_sessions = spec.max_live_sessions;
  // The backend-fault plan wraps THE single backend: every session feels
  // the injected throws/stalls/NaNs (there is no survivor tier here —
  // that contrast is the router's job).
  const std::string backend_id = schedule.backend_fault_planned
                                     ? faulted_backend_id(spec, schedule)
                                     : spec.backend_id;
  rl::AsyncQServer server(
      rl::make_backend(backend_id, backend_for(spec, model)), model,
      config);
  if (spec.prime) {
    const rl::QNetState state = primed_state(spec, model);
    server.run_exclusive([&state](rl::OsElmQBackend& backend) {
      backend.import_state(state);
    });
  }

  Tier tier;
  tier.add = [&server, &spec](const PlannedSession& planned) {
    return server.add_session(async_spec(spec, planned));
  };
  tier.wait = [&server](std::size_t id) { return server.wait(id); };
  tier.stop = [&server] { server.stop(); };
  tier.stall = [&server](std::uint64_t stall_ms) {
    // Occupy the single batch thread: every session's predict/train
    // request queues behind this sleep — the whole-backend stall.
    return server.run_exclusive_async([stall_ms](rl::OsElmQBackend&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms));
    });
  };
  tier.final_checks = [&server](ScenarioVerdict& v) {
    check_server_accounting(v, server.stats());
  };

  drive_tier(spec, schedule, verdict, tier);
  verdict.server_stats_json = server.stats().to_json();
  return verdict;
}

ScenarioVerdict run_router(const ScenarioSpec& spec,
                           const ScenarioSchedule& schedule,
                           ScenarioVerdict verdict) {
  const EnvDims dims = probe_dims(schedule);
  const rl::SimplifiedOutputModel model(dims.state_dim, dims.action_count);
  rl::RouterConfig config;
  config.name = spec.name;
  config.replicas = spec.replicas;
  config.backend_id = spec.backend_id;
  config.backend = backend_for(spec, model);
  config.server.worker_threads = spec.worker_threads;
  config.server.max_live_sessions = spec.max_live_sessions;
  config.admission_wait_us = spec.admission_wait_us;
  if (spec.sync_every_updates > 0) {
    config.sync_policy = rl::TrainSyncPolicy::kPeriodicAverage;
    config.sync_every_updates = spec.sync_every_updates;
  }
  if (schedule.backend_fault_planned) {
    // Fault exactly ONE replica's backend (original incarnation only);
    // its co-replicas — and any replacement the health machine builds —
    // serve the clean backend, which is what rescue recovers onto.
    config.replica_backend_ids.assign(spec.replicas, "");
    config.replica_backend_ids[schedule.backend_fault_replica] =
        faulted_backend_id(spec, schedule);
  }
  rl::RouterQServer router(config, model);
  if (spec.prime) {
    const rl::QNetState state = primed_state(spec, model);
    router.run_exclusive_on_all([&state](rl::OsElmQBackend& backend) {
      backend.import_state(state);
    });
  }

  std::map<std::string, std::uint64_t> served_by;
  std::uint64_t rescued_results = 0;
  std::uint64_t rescued_noncompleted = 0;
  Tier tier;
  tier.add = [&router, &spec](const PlannedSession& planned) {
    rl::RouterSessionSpec session;
    session.session = async_spec(spec, planned);
    session.affinity_key = planned.affinity_key;
    return router.add_session(session);
  };
  tier.wait = [&router](std::size_t id) { return router.wait(id); };
  tier.stop = [&router] { router.stop(); };
  tier.stall = [&router, &spec](std::uint64_t stall_ms) {
    // Occupy ONE replica's batch thread; its co-replicas keep serving.
    return router.run_exclusive_on(
        spec.stall_replica, [stall_ms](rl::OsElmQBackend&) {
          std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms));
        });
  };
  tier.kill = [&router](std::size_t replica) {
    router.kill_replica(replica);
  };
  tier.on_result = [&served_by, &rescued_results, &rescued_noncompleted](
                       const rl::AsyncSessionResult& result) {
    ++served_by[result.served_by];
    if (result.rescues > 0) {
      ++rescued_results;
      if (result.cause != rl::SessionEndCause::kCompleted) {
        ++rescued_noncompleted;
      }
    }
  };
  tier.final_checks = [&router, &config, &spec, &schedule, &served_by,
                       &rescued_results,
                       &rescued_noncompleted](ScenarioVerdict& v) {
    const rl::RouterStats stats = router.stats();
    v.abandoned = stats.abandoned;
    check_server_accounting(v, stats.aggregate, stats.rescued);
    const bool chaotic =
        schedule.kill_planned || schedule.backend_fault_planned;
    // Placement map consistency: every result names a real replica, and
    // the per-replica admission counters agree with both the router's
    // own ledger and the served_by attribution of the results. A rescued
    // session legitimately admits once per placement, so under a planned
    // kill / backend fault the per-slot equality relaxes to a fleet-wide
    // sum; the calm case keeps the strict per-replica identity.
    bool consistent = stats.sessions_admitted == v.admitted;
    std::string detail =
        "router admitted " + std::to_string(stats.sessions_admitted);
    std::uint64_t attributed = 0;
    std::uint64_t slot_admitted = 0;
    std::uint64_t slot_retired = 0;
    for (std::size_t r = 0; r < stats.per_replica.size(); ++r) {
      const std::string replica_name =
          config.name + "/r" + std::to_string(r);
      const auto it = served_by.find(replica_name);
      const std::uint64_t served =
          it == served_by.end() ? 0 : it->second;
      attributed += served;
      slot_admitted += stats.per_replica[r].sessions_admitted;
      slot_retired += stats.per_replica[r].sessions_retired;
      if (!chaotic &&
          (stats.per_replica[r].sessions_admitted != served ||
           stats.per_replica[r].sessions_retired != served)) {
        consistent = false;
      }
      detail += "; " + replica_name + " admitted " +
                std::to_string(stats.per_replica[r].sessions_admitted) +
                " served " + std::to_string(served);
    }
    if (slot_admitted != v.admitted + stats.rescued ||
        slot_retired != v.admitted + stats.rescued) {
      consistent = false;
    }
    // attributed counts only results naming a real replica; any result
    // with an unknown served_by leaves it short of admitted.
    if (attributed != v.admitted) consistent = false;
    push_invariant(v, "placement-consistent", consistent, detail);
    // Health timelines are monotone per incarnation — degraded never
    // heals back within an incarnation (sticky), failed never un-fails —
    // and every replacement incarnation starts healthy.
    bool monotone = true;
    std::size_t health_events = 0;
    for (const rl::ReplicaHealthInfo& info : stats.health) {
      bool first = true;
      std::uint64_t prev_inc = 0;
      int prev_rank = 0;
      for (const rl::ReplicaHealthEvent& event : info.timeline) {
        ++health_events;
        const int rank = static_cast<int>(event.state);
        if (!first) {
          if (event.incarnation < prev_inc) {
            monotone = false;
          } else if (event.incarnation == prev_inc) {
            if (rank < prev_rank) monotone = false;
          } else if (event.state != rl::ReplicaHealth::kHealthy) {
            monotone = false;
          }
        }
        first = false;
        prev_inc = event.incarnation;
        prev_rank = rank;
      }
    }
    push_invariant(v, "health-monotone", monotone,
                   std::to_string(health_events) +
                       " health events across " +
                       std::to_string(stats.health.size()) +
                       " slots, all monotone per incarnation");
    if (schedule.kill_planned && spec.stop_after_ms == 0) {
      // The planned hard kill with no mid-run stop: every session the
      // kill orphaned must have been rescued to completion on a
      // survivor — none abandoned, none left failed.
      push_invariant(v, "rescued-complete",
                     rescued_noncompleted == 0 && stats.abandoned == 0,
                     std::to_string(rescued_results) +
                         " rescued sessions all completed; abandoned " +
                         std::to_string(stats.abandoned));
    }
    if (schedule.kill_planned) {
      // The killed slot must have been replaced, and (when the fleet was
      // primed) every replacement seeded from fleet state — a fresh,
      // untrained replacement would silently serve garbage Q values.
      const bool seeded_ok =
          !spec.prime || stats.replacements_seeded == stats.replacements;
      push_invariant(v, "replacement-seeded",
                     stats.replacements >= 1 && seeded_ok,
                     std::to_string(stats.replacements) +
                         " replacements, " +
                         std::to_string(stats.replacements_seeded) +
                         " seeded from fleet state");
    }
  };

  drive_tier(spec, schedule, verdict, tier);
  const rl::RouterStats final_stats = router.stats();
  verdict.server_stats_json = final_stats.to_json();
  verdict.health_json = final_stats.health_json();
  return verdict;
}

std::string verdict_json(const ScenarioVerdict& verdict,
                         bool with_telemetry) {
  std::ostringstream out;
  char digest[32];
  std::snprintf(digest, sizeof(digest), "0x%016llx",
                static_cast<unsigned long long>(verdict.schedule_digest));
  out << "{\n";
  out << "  \"scenario\": \"" << json_escape(verdict.scenario) << "\",\n";
  out << "  \"backend_tier\": \"" << json_escape(verdict.backend_tier)
      << "\",\n";
  out << "  \"backend_id\": \"" << json_escape(verdict.backend_id)
      << "\",\n";
  out << "  \"seed\": " << verdict.seed << ",\n";
  out << "  \"schedule_digest\": \"" << digest << "\",\n";
  out << "  \"planned_sessions\": " << verdict.planned_sessions << ",\n";
  out << "  \"pass\": " << (verdict.pass ? "true" : "false") << ",\n";
  out << "  \"invariants\": [\n";
  for (std::size_t i = 0; i < verdict.invariants.size(); ++i) {
    const InvariantResult& inv = verdict.invariants[i];
    out << "    {\"name\": \"" << json_escape(inv.name) << "\", \"pass\": "
        << (inv.pass ? "true" : "false");
    // Details carry timing-dependent counts, so they belong to the full
    // verdict only — the deterministic core stays byte-stable.
    if (with_telemetry) {
      out << ", \"detail\": \"" << json_escape(inv.detail) << "\"";
    }
    out << "}" << (i + 1 < verdict.invariants.size() ? "," : "") << "\n";
  }
  out << "  ]";
  if (with_telemetry) {
    out << ",\n  \"telemetry\": {\n";
    out << "    \"attempted\": " << verdict.attempted << ",\n";
    out << "    \"admitted\": " << verdict.admitted << ",\n";
    out << "    \"rejected_capacity\": " << verdict.rejected_capacity
        << ",\n";
    out << "    \"rejected_stopping\": " << verdict.rejected_stopping
        << ",\n";
    out << "    \"rejected_duplicate\": " << verdict.rejected_duplicate
        << ",\n";
    out << "    \"completed\": " << verdict.completed << ",\n";
    out << "    \"failed_env\": " << verdict.failed_env << ",\n";
    out << "    \"failed_backend\": " << verdict.failed_backend << ",\n";
    out << "    \"stopped_early\": " << verdict.stopped_early << ",\n";
    out << "    \"rescued\": " << verdict.rescued << ",\n";
    out << "    \"abandoned\": " << verdict.abandoned << ",\n";
    char wall[64];
    std::snprintf(wall, sizeof(wall), "%.6f", verdict.wall_seconds);
    out << "    \"wall_seconds\": " << wall << ",\n";
    out << "    \"train_step_latency_us\": "
        << verdict.train_step_latency_us.to_json() << ",\n";
    out << "    \"eval_step_latency_us\": "
        << verdict.eval_step_latency_us.to_json() << ",\n";
    out << "    \"server\": "
        << (verdict.server_stats_json.empty() ? "{}"
                                              : verdict.server_stats_json)
        << "\n";
    out << "  }";
  }
  out << "\n}\n";
  return out.str();
}

}  // namespace

std::string ScenarioVerdict::to_json() const {
  return verdict_json(*this, /*with_telemetry=*/true);
}

std::string ScenarioVerdict::deterministic_json() const {
  return verdict_json(*this, /*with_telemetry=*/false);
}

ScenarioVerdict run_chaos(const ScenarioSpec& spec,
                          const ScenarioSchedule& schedule) {
  spec.validate();
  ScenarioVerdict verdict;
  verdict.scenario = spec.name;
  verdict.backend_tier = std::string(to_string(spec.backend));
  verdict.backend_id = spec.backend_id;
  verdict.seed = spec.seed;
  verdict.schedule_digest = schedule.digest;
  verdict.planned_sessions = schedule.total_sessions;
  switch (spec.backend) {
    case ScenarioBackend::kLockstep:
      verdict = run_lockstep(spec, schedule, std::move(verdict));
      break;
    case ScenarioBackend::kAsync:
      verdict = run_async(spec, schedule, std::move(verdict));
      break;
    case ScenarioBackend::kRouter:
      verdict = run_router(spec, schedule, std::move(verdict));
      break;
  }
  verdict.pass = !verdict.invariants.empty();
  for (const InvariantResult& inv : verdict.invariants) {
    verdict.pass = verdict.pass && inv.pass;
  }
  return verdict;
}

}  // namespace oselm::scenario
