#include "scenario/pack.hpp"

#include <stdexcept>

namespace oselm::scenario {

namespace {

/// Common base every builtin starts from: CartPole-family envs (one
/// homogeneous (4, 2) shape), short budgets so the whole pack stays
/// CI-soak sized even under TSan/ASan.
ScenarioSpec base_spec() {
  ScenarioSpec spec;
  spec.env_ids = {"ShapedCartPole-v0", "CartPole-v0"};
  spec.episodes_per_session = 2;
  spec.max_steps_per_episode = 25;
  spec.hidden_units = 32;
  spec.worker_threads = 4;
  spec.burst_gap_ms = 2;
  return spec;
}

ScenarioSpec churn_storm() {
  ScenarioSpec spec = base_spec();
  spec.name = "churn-storm";
  spec.backend = ScenarioBackend::kAsync;
  spec.seed = 801;
  spec.sessions = 32;
  spec.bursts = 4;
  spec.burst_gap_ms = 1;  // joins arrive far faster than retirements
  spec.max_live_sessions = 6;
  spec.train_fraction = 0.25;
  return spec;
}

ScenarioSpec latency_spike() {
  ScenarioSpec spec = base_spec();
  spec.name = "latency-spike";
  spec.backend = ScenarioBackend::kAsync;
  spec.seed = 802;
  spec.sessions = 12;
  spec.bursts = 2;
  spec.max_live_sessions = 12;  // no cap pressure: isolate the spikes
  spec.train_fraction = 0.0;    // evaluate-only (the delay-only contract)
  spec.faults = {{"spike", 0.2}, {"none", 0.0}};
  return spec;
}

ScenarioSpec env_fault_mix() {
  ScenarioSpec spec = base_spec();
  spec.name = "env-fault-mix";
  spec.backend = ScenarioBackend::kAsync;
  spec.seed = 803;
  spec.sessions = 16;
  spec.bursts = 4;
  spec.max_live_sessions = 8;
  spec.train_fraction = 0.5;
  spec.faults = {{"drop", 0.15}, {"reorder", 0.15}, {"throw", 0.05},
                 {"none", 0.0}};
  return spec;
}

ScenarioSpec backend_stall() {
  ScenarioSpec spec = base_spec();
  spec.name = "backend-stall";
  spec.backend = ScenarioBackend::kAsync;
  spec.seed = 804;
  spec.sessions = 12;
  spec.bursts = 3;
  spec.max_live_sessions = 12;
  spec.train_fraction = 0.5;
  spec.stall_ms = 30;       // occupies THE batch thread mid-run
  spec.stall_at_burst = 1;  // with burst 0's sessions already serving
  return spec;
}

ScenarioSpec router_replica_stall() {
  ScenarioSpec spec = base_spec();
  spec.name = "router-replica-stall";
  spec.backend = ScenarioBackend::kRouter;
  spec.seed = 805;
  spec.sessions = 18;
  spec.bursts = 3;
  spec.replicas = 3;
  spec.max_live_sessions = 4;  // per replica: spillover pressure too
  spec.train_fraction = 0.25;
  spec.stall_ms = 30;
  spec.stall_replica = 1;  // co-replicas keep serving through the stall
  spec.stall_at_burst = 1;
  return spec;
}

ScenarioSpec mixed_train_eval() {
  ScenarioSpec spec = base_spec();
  spec.name = "mixed-train-eval";
  spec.backend = ScenarioBackend::kRouter;
  spec.seed = 806;
  spec.sessions = 16;
  spec.bursts = 4;
  spec.burst_gap_ms = 5;
  spec.replicas = 2;
  spec.max_live_sessions = 6;
  spec.train_fraction = 0.5;
  spec.affinity_keys = 6;  // colliding keys: duplicate-id rejections
  // Long budgets + a deadline-style stop: most sessions retire via
  // stop(), exercising the stopped-early accounting path.
  spec.episodes_per_session = 50;
  spec.stop_after_ms = 150;
  return spec;
}

ScenarioSpec backend_fault_storm() {
  ScenarioSpec spec = base_spec();
  spec.name = "backend-fault-storm";
  spec.backend = ScenarioBackend::kAsync;
  spec.seed = 808;
  spec.sessions = 16;
  spec.bursts = 4;
  spec.max_live_sessions = 8;
  spec.train_fraction = 0.25;
  spec.prime = true;
  // The single shared backend throws on a quarter of its serving calls:
  // whole batches fail, their sessions retire with backend-error, and the
  // server must keep serving the survivors — failed_backend attribution
  // and batch-failure containment under sanitizers.
  spec.backend_fault_kind = "throw";
  spec.backend_fault_rate = 0.25;
  return spec;
}

ScenarioSpec replica_kill_rescue() {
  ScenarioSpec spec = base_spec();
  spec.name = "replica-kill-rescue";
  spec.backend = ScenarioBackend::kRouter;
  spec.seed = 809;
  spec.sessions = 16;
  spec.bursts = 4;
  spec.replicas = 4;
  spec.max_live_sessions = 8;  // survivors have headroom for rescues
  spec.train_fraction = 0.0;   // evaluate-only: rescued reruns are exact
  spec.prime = true;           // trained fleet; replacements seed-import
  spec.episodes_per_session = 8;  // sessions live across the kill
  // Hard-kill replica 1 just before burst 2, with bursts 0/1 already
  // serving: its live sessions rescue onto the three survivors and the
  // slot is replaced with a state-seeded fresh server — rescued-complete
  // and replacement-seeded must both hold.
  spec.kill_planned = true;
  spec.kill_replica = 1;
  spec.kill_at_burst = 2;
  return spec;
}

ScenarioSpec replica_backend_nan() {
  ScenarioSpec spec = base_spec();
  spec.name = "replica-backend-nan";
  spec.backend = ScenarioBackend::kRouter;
  spec.seed = 810;
  spec.sessions = 18;
  spec.bursts = 6;
  spec.replicas = 3;
  spec.max_live_sessions = 8;
  spec.train_fraction = 0.25;
  spec.prime = true;
  spec.episodes_per_session = 6;
  // Replica 0's backend (original incarnation only) corrupts nearly every
  // prediction to NaN: the server's non-finite scan converts each into a
  // structured backend failure, consecutive failing passes trip the
  // health machine (degraded -> failed), and the replacement serves the
  // CLEAN backend. Six burst waves keep feeding the sick replica so the
  // consecutive-failure threshold is reached while sessions are live.
  spec.backend_fault_kind = "nan";
  spec.backend_fault_rate = 0.9;
  spec.backend_fault_replica = 0;
  return spec;
}

ScenarioSpec averaging_kill_rescue() {
  ScenarioSpec spec = base_spec();
  spec.name = "averaging-kill-rescue";
  spec.backend = ScenarioBackend::kRouter;
  spec.seed = 812;
  spec.sessions = 16;
  spec.bursts = 4;
  spec.replicas = 3;
  spec.max_live_sessions = 8;
  spec.train_fraction = 0.75;  // train-heavy: averaging rounds fire
  spec.prime = true;
  spec.episodes_per_session = 6;
  // Periodic parameter averaging every 16 fleet-wide train updates,
  // with a hard kill mid-run: the sync thread's averaging rounds and
  // the maintenance thread's rescue/replacement run concurrently —
  // the one builtin whose trace shows every serving-stack actor
  // (batch drains, train applies, averaging rounds, a rescue) at
  // once, which is exactly what the observability acceptance run
  // captures with --trace-out.
  spec.sync_every_updates = 16;
  spec.kill_planned = true;
  spec.kill_replica = 1;
  spec.kill_at_burst = 2;
  return spec;
}

ScenarioSpec bounded_wait_admission() {
  ScenarioSpec spec = base_spec();
  spec.name = "bounded-wait-admission";
  spec.backend = ScenarioBackend::kRouter;
  spec.seed = 811;
  spec.sessions = 16;
  spec.bursts = 2;
  spec.burst_gap_ms = 1;
  spec.replicas = 2;
  spec.max_live_sessions = 3;  // fleet cap 6 << 16 joins: waits, not drops
  spec.train_fraction = 0.0;
  spec.prime = true;
  // Bounded-wait admission: a join against the saturated fleet blocks up
  // to 2 s for a retirement instead of rejecting — with these budgets
  // every session eventually admits (rejected_capacity stays 0 unless
  // the host is pathologically slow, which the verdict would surface).
  spec.admission_wait_us = 2000000;
  return spec;
}

ScenarioSpec lockstep_baseline() {
  ScenarioSpec spec = base_spec();
  spec.name = "lockstep-baseline";
  spec.backend = ScenarioBackend::kLockstep;
  spec.seed = 807;
  spec.sessions = 8;
  spec.bursts = 1;
  spec.max_live_sessions = 8;
  return spec;
}

}  // namespace

std::vector<std::string> builtin_scenarios() {
  return {"churn-storm",          "latency-spike",
          "env-fault-mix",        "backend-stall",
          "router-replica-stall", "mixed-train-eval",
          "backend-fault-storm",  "replica-kill-rescue",
          "replica-backend-nan",  "averaging-kill-rescue",
          "bounded-wait-admission", "lockstep-baseline"};
}

ScenarioSpec builtin_scenario(const std::string& name) {
  if (name == "churn-storm") return churn_storm();
  if (name == "latency-spike") return latency_spike();
  if (name == "env-fault-mix") return env_fault_mix();
  if (name == "backend-stall") return backend_stall();
  if (name == "router-replica-stall") return router_replica_stall();
  if (name == "mixed-train-eval") return mixed_train_eval();
  if (name == "backend-fault-storm") return backend_fault_storm();
  if (name == "replica-kill-rescue") return replica_kill_rescue();
  if (name == "replica-backend-nan") return replica_backend_nan();
  if (name == "averaging-kill-rescue") return averaging_kill_rescue();
  if (name == "bounded-wait-admission") return bounded_wait_admission();
  if (name == "lockstep-baseline") return lockstep_baseline();
  std::string known;
  for (const std::string& id : builtin_scenarios()) {
    known += (known.empty() ? "" : ", ") + id;
  }
  throw std::invalid_argument("builtin_scenario: unknown name '" + name +
                              "' (known: " + known + ")");
}

}  // namespace oselm::scenario
