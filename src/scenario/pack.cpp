#include "scenario/pack.hpp"

#include <stdexcept>

namespace oselm::scenario {

namespace {

/// Common base every builtin starts from: CartPole-family envs (one
/// homogeneous (4, 2) shape), short budgets so the whole pack stays
/// CI-soak sized even under TSan/ASan.
ScenarioSpec base_spec() {
  ScenarioSpec spec;
  spec.env_ids = {"ShapedCartPole-v0", "CartPole-v0"};
  spec.episodes_per_session = 2;
  spec.max_steps_per_episode = 25;
  spec.hidden_units = 32;
  spec.worker_threads = 4;
  spec.burst_gap_ms = 2;
  return spec;
}

ScenarioSpec churn_storm() {
  ScenarioSpec spec = base_spec();
  spec.name = "churn-storm";
  spec.backend = ScenarioBackend::kAsync;
  spec.seed = 801;
  spec.sessions = 32;
  spec.bursts = 4;
  spec.burst_gap_ms = 1;  // joins arrive far faster than retirements
  spec.max_live_sessions = 6;
  spec.train_fraction = 0.25;
  return spec;
}

ScenarioSpec latency_spike() {
  ScenarioSpec spec = base_spec();
  spec.name = "latency-spike";
  spec.backend = ScenarioBackend::kAsync;
  spec.seed = 802;
  spec.sessions = 12;
  spec.bursts = 2;
  spec.max_live_sessions = 12;  // no cap pressure: isolate the spikes
  spec.train_fraction = 0.0;    // evaluate-only (the delay-only contract)
  spec.faults = {{"spike", 0.2}, {"none", 0.0}};
  return spec;
}

ScenarioSpec env_fault_mix() {
  ScenarioSpec spec = base_spec();
  spec.name = "env-fault-mix";
  spec.backend = ScenarioBackend::kAsync;
  spec.seed = 803;
  spec.sessions = 16;
  spec.bursts = 4;
  spec.max_live_sessions = 8;
  spec.train_fraction = 0.5;
  spec.faults = {{"drop", 0.15}, {"reorder", 0.15}, {"throw", 0.05},
                 {"none", 0.0}};
  return spec;
}

ScenarioSpec backend_stall() {
  ScenarioSpec spec = base_spec();
  spec.name = "backend-stall";
  spec.backend = ScenarioBackend::kAsync;
  spec.seed = 804;
  spec.sessions = 12;
  spec.bursts = 3;
  spec.max_live_sessions = 12;
  spec.train_fraction = 0.5;
  spec.stall_ms = 30;       // occupies THE batch thread mid-run
  spec.stall_at_burst = 1;  // with burst 0's sessions already serving
  return spec;
}

ScenarioSpec router_replica_stall() {
  ScenarioSpec spec = base_spec();
  spec.name = "router-replica-stall";
  spec.backend = ScenarioBackend::kRouter;
  spec.seed = 805;
  spec.sessions = 18;
  spec.bursts = 3;
  spec.replicas = 3;
  spec.max_live_sessions = 4;  // per replica: spillover pressure too
  spec.train_fraction = 0.25;
  spec.stall_ms = 30;
  spec.stall_replica = 1;  // co-replicas keep serving through the stall
  spec.stall_at_burst = 1;
  return spec;
}

ScenarioSpec mixed_train_eval() {
  ScenarioSpec spec = base_spec();
  spec.name = "mixed-train-eval";
  spec.backend = ScenarioBackend::kRouter;
  spec.seed = 806;
  spec.sessions = 16;
  spec.bursts = 4;
  spec.burst_gap_ms = 5;
  spec.replicas = 2;
  spec.max_live_sessions = 6;
  spec.train_fraction = 0.5;
  spec.affinity_keys = 6;  // colliding keys: duplicate-id rejections
  // Long budgets + a deadline-style stop: most sessions retire via
  // stop(), exercising the stopped-early accounting path.
  spec.episodes_per_session = 50;
  spec.stop_after_ms = 150;
  return spec;
}

ScenarioSpec lockstep_baseline() {
  ScenarioSpec spec = base_spec();
  spec.name = "lockstep-baseline";
  spec.backend = ScenarioBackend::kLockstep;
  spec.seed = 807;
  spec.sessions = 8;
  spec.bursts = 1;
  spec.max_live_sessions = 8;
  return spec;
}

}  // namespace

std::vector<std::string> builtin_scenarios() {
  return {"churn-storm",   "latency-spike",        "env-fault-mix",
          "backend-stall", "router-replica-stall", "mixed-train-eval",
          "lockstep-baseline"};
}

ScenarioSpec builtin_scenario(const std::string& name) {
  if (name == "churn-storm") return churn_storm();
  if (name == "latency-spike") return latency_spike();
  if (name == "env-fault-mix") return env_fault_mix();
  if (name == "backend-stall") return backend_stall();
  if (name == "router-replica-stall") return router_replica_stall();
  if (name == "mixed-train-eval") return mixed_train_eval();
  if (name == "lockstep-baseline") return lockstep_baseline();
  std::string known;
  for (const std::string& id : builtin_scenarios()) {
    known += (known.empty() ? "" : ", ") + id;
  }
  throw std::invalid_argument("builtin_scenario: unknown name '" + name +
                              "' (known: " + known + ")");
}

}  // namespace oselm::scenario
