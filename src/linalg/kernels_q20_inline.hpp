// Internal: scalar Q20 primitives shared by the kernel TUs.
//
// These replicate fixed::Q20 operator semantics exactly (round-to-nearest
// multiply, saturating add/sub, saturating double conversion) on raw
// int32 words, counting saturation events into kernels::Q20SatCounts.
// Both the scalar reference kernels and the AVX2 tail/fallback paths use
// them, so the two kernel sets can never drift apart.
#pragma once

#include <cstdint>
#include <limits>

#include "linalg/kernels.hpp"

namespace oselm::linalg::kernels::q20detail {

inline constexpr int kFrac = 20;
inline constexpr std::int64_t kRoundBias = std::int64_t{1} << (kFrac - 1);
inline constexpr std::int64_t kRawMax =
    std::numeric_limits<std::int32_t>::max();
inline constexpr std::int64_t kRawMin =
    std::numeric_limits<std::int32_t>::min();

inline std::int32_t q_sat(std::int64_t wide, std::uint64_t& counter) noexcept {
  if (wide > kRawMax) {
    ++counter;
    return static_cast<std::int32_t>(kRawMax);
  }
  if (wide < kRawMin) {
    ++counter;
    return static_cast<std::int32_t>(kRawMin);
  }
  return static_cast<std::int32_t>(wide);
}

inline std::int32_t q_mul(std::int32_t a, std::int32_t b,
                          Q20SatCounts& sat) noexcept {
  std::int64_t product =
      static_cast<std::int64_t>(a) * static_cast<std::int64_t>(b);
  product += kRoundBias;  // round half up for both signs (AP_RND)
  return q_sat(product >> kFrac, sat.mul);
}

inline std::int32_t q_add(std::int32_t a, std::int32_t b,
                          Q20SatCounts& sat) noexcept {
  return q_sat(static_cast<std::int64_t>(a) + static_cast<std::int64_t>(b),
               sat.add);
}

inline std::int32_t q_sub(std::int32_t a, std::int32_t b,
                          Q20SatCounts& sat) noexcept {
  return q_sat(static_cast<std::int64_t>(a) - static_cast<std::int64_t>(b),
               sat.add);
}

inline std::int32_t q_relu(std::int32_t a) noexcept { return a < 0 ? 0 : a; }

inline std::int32_t q_from_double(double value, Q20SatCounts& sat) noexcept {
  const double scaled = value * 1048576.0;  // 2^20
  if (scaled >= 2147483647.0) {
    ++sat.conversion;
    return static_cast<std::int32_t>(kRawMax);
  }
  if (scaled <= -2147483648.0) {
    ++sat.conversion;
    return static_cast<std::int32_t>(kRawMin);
  }
  const double rounded = scaled >= 0.0 ? scaled + 0.5 : scaled - 0.5;
  return static_cast<std::int32_t>(rounded);
}

}  // namespace oselm::linalg::kernels::q20detail
