// Householder QR decomposition and least-squares solve.
//
// The paper mentions QRD as one of the decompositions an ELM pseudo-inverse
// would need on-chip (§2.1); it also serves as an independent reference
// implementation against which the SVD-based pseudo-inverse is tested.
#pragma once

#include "linalg/matrix.hpp"

namespace oselm::linalg {

struct QrDecomposition {
  MatD q;  ///< m x n with orthonormal columns (thin Q)
  MatD r;  ///< n x n upper triangular
};

/// Thin QR of an m x n matrix with m >= n.
QrDecomposition qr_decompose(const MatD& a);

/// Least-squares solution of A x = b via QR (m >= n, full column rank).
VecD qr_least_squares(const MatD& a, const VecD& b);

/// Matrix right-hand-side variant: minimizes ||A X - B||_F column-wise.
MatD qr_least_squares_matrix(const MatD& a, const MatD& b);

}  // namespace oselm::linalg
