#include "linalg/cholesky.hpp"

#include <cmath>
#include <stdexcept>

namespace oselm::linalg {

CholeskyDecomposition cholesky_decompose(const MatD& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("cholesky_decompose: matrix not square");
  }
  const std::size_t n = a.rows();
  CholeskyDecomposition f{MatD(n, n), true};

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double acc = a(i, j);
      const double* li = f.l.row_ptr(i);
      const double* lj = f.l.row_ptr(j);
      for (std::size_t k = 0; k < j; ++k) acc -= li[k] * lj[k];
      if (i == j) {
        if (acc <= 0.0) {
          f.spd = false;
          return f;
        }
        f.l(i, j) = std::sqrt(acc);
      } else {
        f.l(i, j) = acc / f.l(j, j);
      }
    }
  }
  return f;
}

VecD cholesky_solve(const CholeskyDecomposition& f, const VecD& b) {
  const std::size_t n = f.l.rows();
  if (!f.spd) throw std::runtime_error("cholesky_solve: matrix not SPD");
  if (b.size() != n) {
    throw std::invalid_argument("cholesky_solve: size mismatch");
  }
  VecD y(n);
  // L y = b
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    const double* row = f.l.row_ptr(i);
    for (std::size_t j = 0; j < i; ++j) acc -= row[j] * y[j];
    y[i] = acc / row[i];
  }
  // L^T x = y
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= f.l(j, ii) * y[j];
    y[ii] = acc / f.l(ii, ii);
  }
  return y;
}

MatD inverse_spd(const MatD& a) {
  const auto f = cholesky_decompose(a);
  if (!f.spd) throw std::runtime_error("inverse_spd: matrix not SPD");
  const std::size_t n = a.rows();
  MatD inv(n, n);
  VecD e(n, 0.0);
  for (std::size_t c = 0; c < n; ++c) {
    e[c] = 1.0;
    const VecD col = cholesky_solve(f, e);
    for (std::size_t r = 0; r < n; ++r) inv(r, c) = col[r];
    e[c] = 0.0;
  }
  return inv;
}

}  // namespace oselm::linalg
