// Matrix norms used by the regularization analysis (Relation 13):
// spectral norm (largest singular value) vs Frobenius norm.
#pragma once

#include "linalg/matrix.hpp"

namespace oselm::linalg {

/// Frobenius norm sqrt(sum a_ij^2) — the paper calls this the L2 norm of
/// the weight matrix in Relation 13.
double frobenius_norm(const MatD& a);

/// Spectral norm ||A||_2 = sigma_max(A) via full SVD.
double spectral_norm(const MatD& a);

/// Max row-sum norm (infinity norm).
double infinity_norm(const MatD& a);

/// Max absolute element.
double max_abs(const MatD& a);

}  // namespace oselm::linalg
