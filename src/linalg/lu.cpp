#include "linalg/lu.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace oselm::linalg {

namespace {
constexpr double kPivotEps = 1e-13;
}

LuDecomposition lu_decompose(const MatD& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("lu_decompose: matrix not square");
  }
  const std::size_t n = a.rows();
  LuDecomposition f{a, std::vector<std::size_t>(n), 1, false};
  std::iota(f.perm.begin(), f.perm.end(), std::size_t{0});

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting: choose the largest magnitude in this column.
    std::size_t pivot_row = col;
    double pivot_mag = std::abs(f.lu(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double mag = std::abs(f.lu(r, col));
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = r;
      }
    }
    if (pivot_mag < kPivotEps) {
      f.singular = true;
      continue;
    }
    if (pivot_row != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(f.lu(pivot_row, c), f.lu(col, c));
      }
      std::swap(f.perm[pivot_row], f.perm[col]);
      f.sign = -f.sign;
    }
    const double pivot = f.lu(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = f.lu(r, col) / pivot;
      f.lu(r, col) = factor;
      if (factor == 0.0) continue;
      const double* u_row = f.lu.row_ptr(col);
      double* l_row = f.lu.row_ptr(r);
      for (std::size_t c = col + 1; c < n; ++c) l_row[c] -= factor * u_row[c];
    }
  }
  return f;
}

VecD lu_solve(const LuDecomposition& f, const VecD& b) {
  const std::size_t n = f.lu.rows();
  if (b.size() != n) throw std::invalid_argument("lu_solve: size mismatch");
  if (f.singular) throw std::runtime_error("lu_solve: singular matrix");

  VecD x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[f.perm[i]];
  // Forward substitution with unit-diagonal L.
  for (std::size_t i = 1; i < n; ++i) {
    const double* row = f.lu.row_ptr(i);
    double acc = x[i];
    for (std::size_t j = 0; j < i; ++j) acc -= row[j] * x[j];
    x[i] = acc;
  }
  // Back substitution with U.
  for (std::size_t ii = n; ii-- > 0;) {
    const double* row = f.lu.row_ptr(ii);
    double acc = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= row[j] * x[j];
    x[ii] = acc / row[ii];
  }
  return x;
}

MatD lu_solve_matrix(const LuDecomposition& f, const MatD& b) {
  const std::size_t n = f.lu.rows();
  if (b.rows() != n) {
    throw std::invalid_argument("lu_solve_matrix: size mismatch");
  }
  MatD x(n, b.cols());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    const VecD col = lu_solve(f, b.col(c));
    for (std::size_t r = 0; r < n; ++r) x(r, c) = col[r];
  }
  return x;
}

MatD inverse(const MatD& a) {
  const auto f = lu_decompose(a);
  if (f.singular) throw std::runtime_error("inverse: singular matrix");
  return lu_solve_matrix(f, MatD::identity(a.rows()));
}

double determinant(const MatD& a) {
  const auto f = lu_decompose(a);
  if (f.singular) return 0.0;
  double det = static_cast<double>(f.sign);
  for (std::size_t i = 0; i < a.rows(); ++i) det *= f.lu(i, i);
  return det;
}

}  // namespace oselm::linalg
