// AVX2/FMA kernel set. Compiled with -mavx2 -mfma (see src/CMakeLists.txt)
// and only ever entered through the runtime dispatcher in kernels.cpp, so
// no instruction here executes on a CPU without both features.
//
// Double kernels: every multiply-accumulate step is a fused multiply-add
// (vector vfmadd lanes and std::fma scalar tails are the same operation),
// so an element's value never depends on which lane group it landed in.
// The only order-sensitive operation is the dot-product reduction; dot()
// and fused_act_dot() share one reduction structure (two 4-wide
// accumulators over 8-element blocks, a fixed horizontal sum, then a
// sequential fma tail) so they stay bit-identical to each other.
//
// Q20 kernels: saturation is applied in-line per step (blend against the
// int32 limits), which keeps values bit-exact; saturation *events* are
// rare and tracked with a sticky mask — any vector group that observed
// one is recomputed through the scalar primitives so the counters match
// the reference exactly. Dot-style reductions use an exactness argument
// instead of per-step order: int64 sums of int32-range products are
// exact, so when no product saturated and the positive/negative partial
// sums bound every prefix inside the int32 range, the sequential
// saturating sum equals the plain sum; otherwise the scalar reference
// recomputes the row.
#if defined(OSELM_HAVE_AVX2_KERNELS)

#include <immintrin.h>

#include <algorithm>

#include <cmath>
#include <cstdint>

#include "linalg/kernels.hpp"
#include "linalg/kernels_q20_inline.hpp"

namespace oselm::linalg::kernels::avx2 {

namespace {

// -- double helpers ---------------------------------------------------------

/// Fixed horizontal sum: (v0 + v2) + (v1 + v3) via 128-bit halves.
inline double hsum(__m256d v) noexcept {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d pair = _mm_add_pd(lo, hi);
  const __m128d high = _mm_unpackhi_pd(pair, pair);
  return _mm_cvtsd_f64(_mm_add_sd(pair, high));
}

/// ReLU that matches the scalar `x >= 0.0 ? x : 0.0` bit-for-bit
/// (keeps -0.0, returns +0.0 for negatives).
inline __m256d relu_pd(__m256d v) noexcept {
  const __m256d keep = _mm256_cmp_pd(v, _mm256_setzero_pd(), _CMP_GE_OQ);
  return _mm256_and_pd(v, keep);
}

inline double act_scalar(Act act, double x) noexcept {
  switch (act) {
    case Act::kReLU:
      return x >= 0.0 ? x : 0.0;
    case Act::kSigmoid:
      return 1.0 / (1.0 + std::exp(-x));
    case Act::kTanh:
      return std::tanh(x);
    case Act::kLinear:
      return x;
  }
  return x;
}

// -- Q20 helpers ------------------------------------------------------------

// Materialized per call site (the compiler hoists them out of loops); a
// namespace-scope __m256i constant would run AVX instructions during
// static initialization, before the runtime dispatcher can rule them out.
inline __m256i vec_raw_max() noexcept {
  return _mm256_set1_epi64x(q20detail::kRawMax);
}
inline __m256i vec_raw_min() noexcept {
  return _mm256_set1_epi64x(q20detail::kRawMin);
}
inline __m256i vec_round_bias() noexcept {
  return _mm256_set1_epi64x(q20detail::kRoundBias);
}

/// Arithmetic shift right by 20 for int64 lanes (AVX2 has no srai_epi64).
inline __m256i srai64_frac(__m256i v) noexcept {
  const __m256i logical = _mm256_srli_epi64(v, q20detail::kFrac);
  const __m256i negative = _mm256_cmpgt_epi64(_mm256_setzero_si256(), v);
  return _mm256_or_si256(logical,
                         _mm256_slli_epi64(negative, 64 - q20detail::kFrac));
}

/// Clamps int64 lanes into int32 range, OR-ing any clamp into `sticky`.
inline __m256i sat32(__m256i v, __m256i& sticky) noexcept {
  const __m256i over = _mm256_cmpgt_epi64(v, vec_raw_max());
  const __m256i under = _mm256_cmpgt_epi64(vec_raw_min(), v);
  sticky = _mm256_or_si256(sticky, _mm256_or_si256(over, under));
  v = _mm256_blendv_epi8(v, vec_raw_max(), over);
  return _mm256_blendv_epi8(v, vec_raw_min(), under);
}

/// Q20 multiply on int32-range int64 lanes (low 32 bits hold the words).
inline __m256i q20_mul_vec(__m256i a, __m256i b, __m256i& sticky) noexcept {
  __m256i product = _mm256_mul_epi32(a, b);
  product = _mm256_add_epi64(product, vec_round_bias());
  return sat32(srai64_frac(product), sticky);
}

/// Saturating add of int32-range int64 lanes.
inline __m256i q20_add_vec(__m256i a, __m256i b, __m256i& sticky) noexcept {
  return sat32(_mm256_add_epi64(a, b), sticky);
}

/// Loads 4 consecutive int32 words into sign-extended int64 lanes.
inline __m256i load4_epi64(const std::int32_t* p) noexcept {
  return _mm256_cvtepi32_epi64(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
}

/// Stores the low int32 word of each int64 lane to 4 consecutive words.
inline void store4_epi32(std::int32_t* p, __m256i v) noexcept {
  const __m256i packed = _mm256_permutevar8x32_epi32(
      v, _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(p),
                   _mm256_castsi256_si128(packed));
}

inline bool any_set(__m256i mask) noexcept {
  return _mm256_testz_si256(mask, mask) == 0;
}

inline std::int64_t hsum64(__m256i v) noexcept {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  const __m128i pair = _mm_add_epi64(lo, hi);
  return _mm_extract_epi64(pair, 0) + _mm_extract_epi64(pair, 1);
}

/// Splits int32-range int64 lanes into positive/negative running sums.
inline void accumulate_signed(__m256i v, __m256i& pos, __m256i& neg) noexcept {
  const __m256i negative = _mm256_cmpgt_epi64(_mm256_setzero_si256(), v);
  neg = _mm256_add_epi64(neg, _mm256_and_si256(v, negative));
  pos = _mm256_add_epi64(pos, _mm256_andnot_si256(negative, v));
}

}  // namespace

// ---------------------------------------------------------------------------
// Double kernels
// ---------------------------------------------------------------------------

double dot(const double* a, const double* b, std::size_t n) noexcept {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + j), _mm256_loadu_pd(b + j),
                           acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + j + 4),
                           _mm256_loadu_pd(b + j + 4), acc1);
  }
  if (j + 4 <= n) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + j), _mm256_loadu_pd(b + j),
                           acc0);
    j += 4;
  }
  double sum = hsum(_mm256_add_pd(acc0, acc1));
  for (; j < n; ++j) sum = std::fma(a[j], b[j], sum);
  return sum;
}

void axpy(double* y, double a, const double* x, std::size_t n) noexcept {
  const __m256d av = _mm256_set1_pd(a);
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    _mm256_storeu_pd(
        y + j, _mm256_fmadd_pd(av, _mm256_loadu_pd(x + j),
                               _mm256_loadu_pd(y + j)));
    _mm256_storeu_pd(
        y + j + 4, _mm256_fmadd_pd(av, _mm256_loadu_pd(x + j + 4),
                                   _mm256_loadu_pd(y + j + 4)));
  }
  if (j + 4 <= n) {
    _mm256_storeu_pd(
        y + j, _mm256_fmadd_pd(av, _mm256_loadu_pd(x + j),
                               _mm256_loadu_pd(y + j)));
    j += 4;
  }
  for (; j < n; ++j) y[j] = std::fma(a, x[j], y[j]);
}

void bias_activate(double* h, const double* bias, std::size_t n,
                   Act act) noexcept {
  if (act == Act::kSigmoid || act == Act::kTanh) {
    // Transcendental activations stay on libm in every mode.
    for (std::size_t j = 0; j < n; ++j) {
      h[j] = act_scalar(act, h[j] + bias[j]);
    }
    return;
  }
  const bool relu = act == Act::kReLU;
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    __m256d t = _mm256_add_pd(_mm256_loadu_pd(h + j),
                              _mm256_loadu_pd(bias + j));
    if (relu) t = relu_pd(t);
    _mm256_storeu_pd(h + j, t);
  }
  for (; j < n; ++j) h[j] = act_scalar(act, h[j] + bias[j]);
}

void act_combine(const double* shared, const double* last_row, double code,
                 const double* bias, double* h_out, std::size_t n,
                 Act act) noexcept {
  if (act == Act::kSigmoid || act == Act::kTanh) {
    // fma matches the vector lanes of axpy/act_combine elsewhere in this
    // TU, so every element sees identical arithmetic regardless of path.
    for (std::size_t j = 0; j < n; ++j) {
      h_out[j] =
          act_scalar(act, std::fma(code, last_row[j], shared[j]) + bias[j]);
    }
    return;
  }
  const bool relu = act == Act::kReLU;
  const __m256d codev = _mm256_set1_pd(code);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    __m256d t = _mm256_fmadd_pd(codev, _mm256_loadu_pd(last_row + j),
                                _mm256_loadu_pd(shared + j));
    t = _mm256_add_pd(t, _mm256_loadu_pd(bias + j));
    if (relu) t = relu_pd(t);
    _mm256_storeu_pd(h_out + j, t);
  }
  for (; j < n; ++j) {
    const double t = std::fma(code, last_row[j], shared[j]) + bias[j];
    h_out[j] = act_scalar(act, t);
  }
}

double fused_act_dot(const double* shared, const double* last_row,
                     double code, const double* bias, const double* beta,
                     std::size_t n, Act act) noexcept {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t j = 0;
  if (act == Act::kReLU || act == Act::kLinear) {
    const bool relu = act == Act::kReLU;
    const __m256d codev = _mm256_set1_pd(code);
    const auto h4 = [&](std::size_t at) noexcept {
      __m256d t = _mm256_fmadd_pd(codev, _mm256_loadu_pd(last_row + at),
                                  _mm256_loadu_pd(shared + at));
      t = _mm256_add_pd(t, _mm256_loadu_pd(bias + at));
      return relu ? relu_pd(t) : t;
    };
    for (; j + 8 <= n; j += 8) {
      acc0 = _mm256_fmadd_pd(h4(j), _mm256_loadu_pd(beta + j), acc0);
      acc1 = _mm256_fmadd_pd(h4(j + 4), _mm256_loadu_pd(beta + j + 4), acc1);
    }
    if (j + 4 <= n) {
      acc0 = _mm256_fmadd_pd(h4(j), _mm256_loadu_pd(beta + j), acc0);
      j += 4;
    }
  } else {
    // Sigmoid/tanh: compute activations through libm into a staging block,
    // keeping the exact dot() reduction structure over the lanes.
    alignas(32) double buf[8];
    const auto fill = [&](std::size_t at, std::size_t count) noexcept {
      for (std::size_t k = 0; k < count; ++k) {
        const double t =
            std::fma(code, last_row[at + k], shared[at + k]) + bias[at + k];
        buf[k] = act_scalar(act, t);
      }
    };
    for (; j + 8 <= n; j += 8) {
      fill(j, 8);
      acc0 = _mm256_fmadd_pd(_mm256_load_pd(buf), _mm256_loadu_pd(beta + j),
                             acc0);
      acc1 = _mm256_fmadd_pd(_mm256_load_pd(buf + 4),
                             _mm256_loadu_pd(beta + j + 4), acc1);
    }
    if (j + 4 <= n) {
      fill(j, 4);
      acc0 = _mm256_fmadd_pd(_mm256_load_pd(buf), _mm256_loadu_pd(beta + j),
                             acc0);
      j += 4;
    }
  }
  double sum = hsum(_mm256_add_pd(acc0, acc1));
  for (; j < n; ++j) {
    const double t = std::fma(code, last_row[j], shared[j]) + bias[j];
    sum = std::fma(act_scalar(act, t), beta[j], sum);
  }
  return sum;
}

void sym_rank1_update_rows(double* p, std::size_t n, std::size_t row_begin,
                           std::size_t row_end, const double* u, double inv,
                           double p_scale) noexcept {
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const double scaled = u[i] * inv;
    double* row = p + i * n;
    std::size_t j = i;
    if (p_scale == 1.0) {
      if (scaled == 0.0) continue;
      const __m256d sv = _mm256_set1_pd(scaled);
      for (; j + 4 <= n; j += 4) {
        _mm256_storeu_pd(
            row + j, _mm256_fnmadd_pd(sv, _mm256_loadu_pd(u + j),
                                      _mm256_loadu_pd(row + j)));
      }
      for (; j < n; ++j) row[j] = std::fma(-scaled, u[j], row[j]);
    } else {
      const __m256d sv = _mm256_set1_pd(scaled);
      const __m256d ps = _mm256_set1_pd(p_scale);
      for (; j + 4 <= n; j += 4) {
        const __m256d t = _mm256_fnmadd_pd(sv, _mm256_loadu_pd(u + j),
                                           _mm256_loadu_pd(row + j));
        _mm256_storeu_pd(row + j, _mm256_mul_pd(t, ps));
      }
      for (; j < n; ++j) {
        row[j] = std::fma(-scaled, u[j], row[j]) * p_scale;
      }
    }
  }
}

void mirror_lower_rows(double* p, std::size_t n, std::size_t row_begin,
                       std::size_t row_end) noexcept {
  // Mirror the upper triangle down. Off-diagonal 16x16 tiles decompose
  // into 4x4 in-register transposes (unpack + 128-bit permute), turning
  // the column walk into contiguous loads and stores; diagonal, remainder,
  // and band-clipped tiles fall back to the scalar walk (pure copies, so
  // every path is bit-identical and any banding partitions the work).
  constexpr std::size_t kTile = 16;
  const auto transpose4x4 = [p, n](std::size_t src_row,
                                   std::size_t dst_row) noexcept {
    // dst rows dst_row..+3 cols src_row..+3 receive the transpose of
    // src rows src_row..+3 cols dst_row..+3.
    const __m256d r0 = _mm256_loadu_pd(p + (src_row + 0) * n + dst_row);
    const __m256d r1 = _mm256_loadu_pd(p + (src_row + 1) * n + dst_row);
    const __m256d r2 = _mm256_loadu_pd(p + (src_row + 2) * n + dst_row);
    const __m256d r3 = _mm256_loadu_pd(p + (src_row + 3) * n + dst_row);
    const __m256d t0 = _mm256_unpacklo_pd(r0, r1);
    const __m256d t1 = _mm256_unpackhi_pd(r0, r1);
    const __m256d t2 = _mm256_unpacklo_pd(r2, r3);
    const __m256d t3 = _mm256_unpackhi_pd(r2, r3);
    _mm256_storeu_pd(p + (dst_row + 0) * n + src_row,
                     _mm256_permute2f128_pd(t0, t2, 0x20));
    _mm256_storeu_pd(p + (dst_row + 1) * n + src_row,
                     _mm256_permute2f128_pd(t1, t3, 0x20));
    _mm256_storeu_pd(p + (dst_row + 2) * n + src_row,
                     _mm256_permute2f128_pd(t0, t2, 0x31));
    _mm256_storeu_pd(p + (dst_row + 3) * n + src_row,
                     _mm256_permute2f128_pd(t1, t3, 0x31));
  };
  for (std::size_t t0 = (row_begin / kTile) * kTile; t0 < row_end;
       t0 += kTile) {
    const std::size_t i0 = std::max(t0, row_begin);
    const std::size_t i1 = std::min({t0 + kTile, row_end, n});
    for (std::size_t i = std::max(i0, t0 + 1); i < i1; ++i) {  // diag tile
      double* row = p + i * n;
      for (std::size_t j = t0; j < i; ++j) row[j] = p[j * n + i];
    }
    const bool full_rows = i0 == t0 && i1 == t0 + kTile;
    for (std::size_t j0 = 0; j0 < t0; j0 += kTile) {  // tiles left of it
      if (full_rows) {
        for (std::size_t jj = j0; jj < j0 + kTile; jj += 4) {
          for (std::size_t ii = t0; ii < t0 + kTile; ii += 4) {
            transpose4x4(jj, ii);
          }
        }
      } else {
        for (std::size_t i = i0; i < i1; ++i) {
          double* row = p + i * n;
          for (std::size_t j = j0; j < j0 + kTile; ++j) {
            row[j] = p[j * n + i];
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Q20 kernels
// ---------------------------------------------------------------------------

void q20_hidden_mac(const std::int32_t* a, std::size_t rows,
                    std::size_t units, const std::int32_t* x,
                    const std::int32_t* init, std::int32_t* out, bool relu,
                    Q20SatCounts& sat) noexcept {
  std::size_t j = 0;
  for (; j + 4 <= units; j += 4) {
    __m256i acc = load4_epi64(init + j);
    __m256i sticky = _mm256_setzero_si256();
    for (std::size_t i = 0; i < rows; ++i) {
      const __m256i av = load4_epi64(a + i * units + j);
      const __m256i xv = _mm256_set1_epi64x(x[i]);
      acc = q20_add_vec(acc, q20_mul_vec(av, xv, sticky), sticky);
    }
    if (any_set(sticky)) {
      // A lane saturated: redo these 4 columns through the scalar
      // primitives so the event counters match the reference.
      for (std::size_t c = j; c < j + 4; ++c) {
        std::int32_t acc_c = init[c];
        for (std::size_t i = 0; i < rows; ++i) {
          acc_c = q20detail::q_add(
              acc_c, q20detail::q_mul(x[i], a[i * units + c], sat), sat);
        }
        out[c] = relu ? q20detail::q_relu(acc_c) : acc_c;
      }
      continue;
    }
    if (relu) {
      const __m256i negative =
          _mm256_cmpgt_epi64(_mm256_setzero_si256(), acc);
      acc = _mm256_andnot_si256(negative, acc);
    }
    store4_epi32(out + j, acc);
  }
  for (; j < units; ++j) {
    std::int32_t acc = init[j];
    for (std::size_t i = 0; i < rows; ++i) {
      acc = q20detail::q_add(acc,
                             q20detail::q_mul(x[i], a[i * units + j], sat),
                             sat);
    }
    out[j] = relu ? q20detail::q_relu(acc) : acc;
  }
}

std::int32_t q20_dot(const std::int32_t* a, const std::int32_t* b,
                     std::size_t n, std::int32_t init,
                     Q20SatCounts& sat) noexcept {
  __m256i pos = _mm256_setzero_si256();
  __m256i neg = _mm256_setzero_si256();
  __m256i sticky = _mm256_setzero_si256();
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256i prod =
        q20_mul_vec(load4_epi64(a + j), load4_epi64(b + j), sticky);
    accumulate_signed(prod, pos, neg);
  }
  Q20SatCounts tail_sat;
  std::int64_t tail_pos = 0;
  std::int64_t tail_neg = 0;
  for (; j < n; ++j) {
    const std::int32_t prod = q20detail::q_mul(a[j], b[j], tail_sat);
    if (prod < 0) {
      tail_neg += prod;
    } else {
      tail_pos += prod;
    }
  }
  if (any_set(sticky) || tail_sat.mul != 0) {
    return scalar::q20_dot(a, b, n, init, sat);
  }
  const std::int64_t pos_total = hsum64(pos) + tail_pos;
  const std::int64_t neg_total = hsum64(neg) + tail_neg;
  // Every prefix of the sequential sum lies in [init + neg_total,
  // init + pos_total]; when that interval is inside the int32 range no
  // per-step clamp can fire and the exact sum is the answer.
  if (init + neg_total < q20detail::kRawMin ||
      init + pos_total > q20detail::kRawMax) {
    return scalar::q20_dot(a, b, n, init, sat);
  }
  return static_cast<std::int32_t>(init + pos_total + neg_total);
}

std::int32_t q20_action_dot(const std::int32_t* shared,
                            const std::int32_t* last_row, std::int32_t code,
                            const std::int32_t* beta, std::size_t units,
                            Q20SatCounts& sat) noexcept {
  const __m256i codev = _mm256_set1_epi64x(code);
  __m256i pos = _mm256_setzero_si256();
  __m256i neg = _mm256_setzero_si256();
  __m256i sticky = _mm256_setzero_si256();
  std::size_t j = 0;
  for (; j + 4 <= units; j += 4) {
    const __m256i corr = q20_mul_vec(codev, load4_epi64(last_row + j), sticky);
    __m256i h = q20_add_vec(load4_epi64(shared + j), corr, sticky);
    h = _mm256_andnot_si256(_mm256_cmpgt_epi64(_mm256_setzero_si256(), h), h);
    const __m256i prod = q20_mul_vec(h, load4_epi64(beta + j), sticky);
    accumulate_signed(prod, pos, neg);
  }
  Q20SatCounts tail_sat;
  std::int64_t tail_pos = 0;
  std::int64_t tail_neg = 0;
  for (; j < units; ++j) {
    const std::int32_t h = q20detail::q_relu(q20detail::q_add(
        shared[j], q20detail::q_mul(code, last_row[j], tail_sat), tail_sat));
    const std::int32_t prod = q20detail::q_mul(h, beta[j], tail_sat);
    if (prod < 0) {
      tail_neg += prod;
    } else {
      tail_pos += prod;
    }
  }
  if (any_set(sticky) || tail_sat.mul != 0 || tail_sat.add != 0) {
    return scalar::q20_action_dot(shared, last_row, code, beta, units, sat);
  }
  const std::int64_t pos_total = hsum64(pos) + tail_pos;
  const std::int64_t neg_total = hsum64(neg) + tail_neg;
  if (neg_total < q20detail::kRawMin || pos_total > q20detail::kRawMax) {
    return scalar::q20_action_dot(shared, last_row, code, beta, units, sat);
  }
  return static_cast<std::int32_t>(pos_total + neg_total);
}

void q20_rank1_downdate(std::int32_t* p, std::size_t n,
                        const std::int32_t* u, std::int32_t inv,
                        std::int32_t* scaled_ws, Q20SatCounts& sat) noexcept {
  // The O(n) scaled vector goes through the scalar primitives (counted
  // directly); the O(n^2) sweep is vectorized with a check-before-store
  // fallback per 4-lane group.
  for (std::size_t i = 0; i < n; ++i) {
    scaled_ws[i] = q20detail::q_mul(u[i], inv, sat);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::int32_t scaled = scaled_ws[i];
    const __m256i sv = _mm256_set1_epi64x(scaled);
    std::int32_t* row = p + i * n;
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      __m256i sticky = _mm256_setzero_si256();
      const __m256i prod = q20_mul_vec(sv, load4_epi64(u + j), sticky);
      const __m256i diff = _mm256_sub_epi64(load4_epi64(row + j), prod);
      const __m256i result = sat32(diff, sticky);
      if (any_set(sticky)) {
        // Row values not yet overwritten: recompute the group scalar so
        // the saturation counters stay exact.
        for (std::size_t c = j; c < j + 4; ++c) {
          row[c] = q20detail::q_sub(row[c],
                                    q20detail::q_mul(scaled, u[c], sat), sat);
        }
        continue;
      }
      store4_epi32(row + j, result);
    }
    for (; j < n; ++j) {
      row[j] = q20detail::q_sub(row[j], q20detail::q_mul(scaled, u[j], sat),
                                sat);
    }
  }
}

void q20_axpy(std::int32_t* y, std::int32_t a, const std::int32_t* x,
              std::size_t n, Q20SatCounts& sat) noexcept {
  const __m256i av = _mm256_set1_epi64x(a);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    __m256i sticky = _mm256_setzero_si256();
    const __m256i prod = q20_mul_vec(av, load4_epi64(x + j), sticky);
    const __m256i sum = _mm256_add_epi64(load4_epi64(y + j), prod);
    const __m256i result = sat32(sum, sticky);
    if (any_set(sticky)) {
      for (std::size_t c = j; c < j + 4; ++c) {
        y[c] = q20detail::q_add(y[c], q20detail::q_mul(a, x[c], sat), sat);
      }
      continue;
    }
    store4_epi32(y + j, result);
  }
  for (; j < n; ++j) {
    y[j] = q20detail::q_add(y[j], q20detail::q_mul(a, x[j], sat), sat);
  }
}

void q20_quantize(const double* src, std::int32_t* dst, std::size_t n,
                  Q20SatCounts& sat) noexcept {
  const __m256d scale = _mm256_set1_pd(1048576.0);
  const __m256d hi = _mm256_set1_pd(2147483647.0);
  const __m256d lo = _mm256_set1_pd(-2147483648.0);
  const __m256d half_pos = _mm256_set1_pd(0.5);
  const __m256d half_neg = _mm256_set1_pd(-0.5);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d scaled = _mm256_mul_pd(_mm256_loadu_pd(src + i), scale);
    const __m256d over = _mm256_cmp_pd(scaled, hi, _CMP_GE_OQ);
    const __m256d under = _mm256_cmp_pd(scaled, lo, _CMP_LE_OQ);
    if (_mm256_movemask_pd(_mm256_or_pd(over, under)) != 0) {
      for (std::size_t c = i; c < i + 4; ++c) {
        dst[c] = q20detail::q_from_double(src[c], sat);
      }
      continue;
    }
    const __m256d nonneg =
        _mm256_cmp_pd(scaled, _mm256_setzero_pd(), _CMP_GE_OQ);
    const __m256d offset = _mm256_blendv_pd(half_neg, half_pos, nonneg);
    // cvttpd truncates toward zero, matching the reference's int cast.
    const __m128i words = _mm256_cvttpd_epi32(_mm256_add_pd(scaled, offset));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), words);
  }
  for (; i < n; ++i) dst[i] = q20detail::q_from_double(src[i], sat);
}

void q20_dequantize(const std::int32_t* src, double* dst,
                    std::size_t n) noexcept {
  // Multiplying by the exact power-of-two reciprocal equals the
  // reference's division bit-for-bit.
  const __m256d inv_scale = _mm256_set1_pd(1.0 / 1048576.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d values = _mm256_cvtepi32_pd(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i)));
    _mm256_storeu_pd(dst + i, _mm256_mul_pd(values, inv_scale));
  }
  for (; i < n; ++i) dst[i] = static_cast<double>(src[i]) / 1048576.0;
}

}  // namespace oselm::linalg::kernels::avx2

#endif  // OSELM_HAVE_AVX2_KERNELS
