// LU decomposition with partial pivoting: solves, inverse, determinant.
// Used for the ELM initial training when the Gram matrix is well-posed.
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/matrix.hpp"

namespace oselm::linalg {

/// Compact LU factorization PA = LU (L unit-diagonal, stored in one matrix).
struct LuDecomposition {
  MatD lu;                        ///< L below diagonal, U on/above
  std::vector<std::size_t> perm; ///< row permutation (P)
  int sign = 1;                   ///< permutation parity (for determinant)
  bool singular = false;          ///< true when a pivot underflowed
};

/// Factorizes a square matrix. Never throws on singularity; check the flag.
LuDecomposition lu_decompose(const MatD& a);

/// Solves A x = b given the factorization (b length == order).
VecD lu_solve(const LuDecomposition& f, const VecD& b);

/// Solves A X = B column-by-column.
MatD lu_solve_matrix(const LuDecomposition& f, const MatD& b);

/// Inverse via LU; throws std::runtime_error when singular.
MatD inverse(const MatD& a);

/// Determinant via LU (0 when singular).
double determinant(const MatD& a);

}  // namespace oselm::linalg
