#include "linalg/qr.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/ops.hpp"

namespace oselm::linalg {

namespace {

/// Applies Householder reflectors stored in `work` (and scalars in `tau`)
/// to b in place: b <- Q^T b.
void apply_qt(const MatD& work, const VecD& tau, VecD& b) {
  const std::size_t m = work.rows();
  const std::size_t n = work.cols();
  for (std::size_t k = 0; k < n; ++k) {
    // v = [1, work(k+1..m-1, k)]
    double acc = b[k];
    for (std::size_t i = k + 1; i < m; ++i) acc += work(i, k) * b[i];
    acc *= tau[k];
    b[k] -= acc;
    for (std::size_t i = k + 1; i < m; ++i) b[i] -= acc * work(i, k);
  }
}

struct HouseholderFactor {
  MatD work;  ///< R in upper triangle, reflector tails below
  VecD tau;   ///< reflector scalars
};

HouseholderFactor householder_factor(const MatD& a) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  if (m < n) throw std::invalid_argument("qr: requires rows >= cols");
  HouseholderFactor f{a, VecD(n, 0.0)};

  for (std::size_t k = 0; k < n; ++k) {
    // Norm of the k-th column below (and including) the diagonal.
    double norm_sq = 0.0;
    for (std::size_t i = k; i < m; ++i) norm_sq += f.work(i, k) * f.work(i, k);
    const double norm = std::sqrt(norm_sq);
    if (norm == 0.0) {
      f.tau[k] = 0.0;
      continue;
    }
    const double alpha = f.work(k, k) >= 0.0 ? -norm : norm;
    const double v0 = f.work(k, k) - alpha;
    // Normalize the reflector so its first component is 1.
    for (std::size_t i = k + 1; i < m; ++i) f.work(i, k) /= v0;
    f.tau[k] = -v0 / alpha;  // == 2 / (v^T v) with v0-normalized v
    f.work(k, k) = alpha;

    // Apply the reflector to the trailing columns.
    for (std::size_t j = k + 1; j < n; ++j) {
      double acc = f.work(k, j);
      for (std::size_t i = k + 1; i < m; ++i) {
        acc += f.work(i, k) * f.work(i, j);
      }
      acc *= f.tau[k];
      f.work(k, j) -= acc;
      for (std::size_t i = k + 1; i < m; ++i) {
        f.work(i, j) -= acc * f.work(i, k);
      }
    }
  }
  return f;
}

}  // namespace

QrDecomposition qr_decompose(const MatD& a) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  const auto f = householder_factor(a);

  QrDecomposition out{MatD(m, n), MatD(n, n)};
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) out.r(i, j) = f.work(i, j);
  }
  // Build thin Q by applying reflectors to the identity columns.
  // Q = H_0 H_1 ... H_{n-1}; we form Q e_c for each c < n.
  for (std::size_t c = 0; c < n; ++c) {
    VecD q_col(m, 0.0);
    q_col[c] = 1.0;
    // Apply reflectors in reverse order: Q = H_0 ... H_{n-1} applied to e_c.
    for (std::size_t kk = n; kk-- > 0;) {
      double acc = q_col[kk];
      for (std::size_t i = kk + 1; i < m; ++i) {
        acc += f.work(i, kk) * q_col[i];
      }
      acc *= f.tau[kk];
      q_col[kk] -= acc;
      for (std::size_t i = kk + 1; i < m; ++i) {
        q_col[i] -= acc * f.work(i, kk);
      }
    }
    for (std::size_t i = 0; i < m; ++i) out.q(i, c) = q_col[i];
  }
  return out;
}

VecD qr_least_squares(const MatD& a, const VecD& b) {
  if (b.size() != a.rows()) {
    throw std::invalid_argument("qr_least_squares: size mismatch");
  }
  const std::size_t n = a.cols();
  const auto f = householder_factor(a);
  VecD qtb = b;
  apply_qt(f.work, f.tau, qtb);
  // Back-substitute R x = (Q^T b)[0..n)
  VecD x(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = qtb[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= f.work(ii, j) * x[j];
    const double diag = f.work(ii, ii);
    if (std::abs(diag) < 1e-13) {
      throw std::runtime_error("qr_least_squares: rank deficient");
    }
    x[ii] = acc / diag;
  }
  return x;
}

MatD qr_least_squares_matrix(const MatD& a, const MatD& b) {
  if (b.rows() != a.rows()) {
    throw std::invalid_argument("qr_least_squares_matrix: size mismatch");
  }
  MatD x(a.cols(), b.cols());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    const VecD col = qr_least_squares(a, b.col(c));
    for (std::size_t r = 0; r < a.cols(); ++r) x(r, c) = col[r];
  }
  return x;
}

}  // namespace oselm::linalg
