// Dense row-major matrix container.
//
// The template parameter lets the FPGA model reuse the container with
// fixed-point elements; all numerically heavy routines (decompositions,
// blocked GEMM) are provided for Matrix<double> in the companion headers.
#pragma once

#include <cmath>
#include <cstddef>
#include <initializer_list>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace oselm::linalg {

template <typename T>
class Matrix {
 public:
  using value_type = T;

  Matrix() = default;

  /// rows x cols matrix, value-initialized (zero for arithmetic T).
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols) {}

  Matrix(std::size_t rows, std::size_t cols, const T& fill_value)
      : rows_(rows), cols_(cols), data_(rows * cols, fill_value) {}

  /// Row-major construction from nested initializer lists; all rows must
  /// have equal length.
  Matrix(std::initializer_list<std::initializer_list<T>> rows_init) {
    rows_ = rows_init.size();
    cols_ = rows_ == 0 ? 0 : rows_init.begin()->size();
    data_.reserve(rows_ * cols_);
    for (const auto& row : rows_init) {
      if (row.size() != cols_) {
        throw std::invalid_argument("Matrix: ragged initializer list");
      }
      data_.insert(data_.end(), row.begin(), row.end());
    }
  }

  /// Takes ownership of row-major data (size must be rows*cols).
  Matrix(std::size_t rows, std::size_t cols, std::vector<T> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    if (data_.size() != rows_ * cols_) {
      throw std::invalid_argument("Matrix: data size mismatch");
    }
  }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  /// Unchecked element access (hot paths).
  T& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  const T& operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  /// Checked element access.
  T& at(std::size_t r, std::size_t c) {
    check_index(r, c);
    return data_[r * cols_ + c];
  }
  const T& at(std::size_t r, std::size_t c) const {
    check_index(r, c);
    return data_[r * cols_ + c];
  }

  [[nodiscard]] T* data() noexcept { return data_.data(); }
  [[nodiscard]] const T* data() const noexcept { return data_.data(); }
  [[nodiscard]] T* row_ptr(std::size_t r) noexcept {
    return data_.data() + r * cols_;
  }
  [[nodiscard]] const T* row_ptr(std::size_t r) const noexcept {
    return data_.data() + r * cols_;
  }

  [[nodiscard]] std::vector<T>& storage() noexcept { return data_; }
  [[nodiscard]] const std::vector<T>& storage() const noexcept {
    return data_;
  }

  void fill(const T& value) { data_.assign(data_.size(), value); }

  /// Identity of the given order (requires T constructible from 0 and 1).
  static Matrix identity(std::size_t n) {
    Matrix m(n, n, T(0));
    for (std::size_t i = 0; i < n; ++i) m(i, i) = T(1);
    return m;
  }

  static Matrix zeros(std::size_t rows, std::size_t cols) {
    return Matrix(rows, cols, T(0));
  }

  /// n x n diagonal matrix from a vector.
  static Matrix diagonal(const std::vector<T>& diag) {
    Matrix m(diag.size(), diag.size(), T(0));
    for (std::size_t i = 0; i < diag.size(); ++i) m(i, i) = diag[i];
    return m;
  }

  /// Single-row matrix view of a vector (copies).
  static Matrix row_vector(const std::vector<T>& v) {
    return Matrix(1, v.size(), v);
  }

  /// Single-column matrix view of a vector (copies).
  static Matrix col_vector(const std::vector<T>& v) {
    return Matrix(v.size(), 1, v);
  }

  [[nodiscard]] Matrix transposed() const {
    Matrix out(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r) {
      for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
    }
    return out;
  }

  /// Copies row r into a vector.
  [[nodiscard]] std::vector<T> row(std::size_t r) const {
    check_index(r, 0);
    return std::vector<T>(row_ptr(r), row_ptr(r) + cols_);
  }

  /// Copies column c into a vector.
  [[nodiscard]] std::vector<T> col(std::size_t c) const {
    check_index(0, c);
    std::vector<T> out(rows_);
    for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
    return out;
  }

  void set_row(std::size_t r, const std::vector<T>& values) {
    if (values.size() != cols_) {
      throw std::invalid_argument("Matrix::set_row: width mismatch");
    }
    for (std::size_t c = 0; c < cols_; ++c) (*this)(r, c) = values[c];
  }

  bool operator==(const Matrix& other) const = default;

 private:
  void check_index(std::size_t r, std::size_t c) const {
    if (r >= rows_ || c >= cols_) {
      throw std::out_of_range("Matrix index (" + std::to_string(r) + "," +
                              std::to_string(c) + ") out of " +
                              std::to_string(rows_) + "x" +
                              std::to_string(cols_));
    }
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

using MatD = Matrix<double>;
using VecD = std::vector<double>;

/// Max |a-b| over all elements; matrices must share a shape.
inline double max_abs_diff(const MatD& a, const MatD& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument("max_abs_diff: shape mismatch");
  }
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a.data()[i] - b.data()[i]));
  }
  return worst;
}

/// True when all elements agree within `tol`.
inline bool approx_equal(const MatD& a, const MatD& b, double tol = 1e-9) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         max_abs_diff(a, b) <= tol;
}

}  // namespace oselm::linalg
