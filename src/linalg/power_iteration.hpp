// Power iteration estimate of the largest singular value.
//
// Spectral normalization (Miyato et al., used in §3.3 for alpha) is usually
// implemented with a handful of power iterations instead of a full SVD;
// this is the cheap runtime-friendly path, validated against linalg::svd
// in the test suite.
#pragma once

#include "linalg/matrix.hpp"
#include "util/rng.hpp"

namespace oselm::linalg {

struct PowerIterationOptions {
  std::size_t max_iterations = 200;
  double tolerance = 1e-10;  ///< relative change convergence threshold
};

struct PowerIterationResult {
  double sigma_max = 0.0;
  VecD right_vector;           ///< unit right singular vector (v)
  std::size_t iterations = 0;
  bool converged = false;
};

/// Estimates sigma_max(A) by iterating v <- normalize(A^T (A v)).
PowerIterationResult power_iteration_sigma_max(
    const MatD& a, util::Rng& rng, const PowerIterationOptions& options = {});

}  // namespace oselm::linalg
