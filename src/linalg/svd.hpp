// Singular value decomposition via the one-sided Jacobi method, plus the
// Moore–Penrose pseudo-inverse built on it.
//
// The paper uses SVD twice: (1) the ELM pseudo-inverse H^+ (Eq. 3) and
// (2) sigma_max(alpha) for spectral normalization (Algorithm 1 line 2).
#pragma once

#include "linalg/matrix.hpp"

namespace oselm::linalg {

struct SvdResult {
  MatD u;                 ///< m x r with orthonormal columns
  VecD singular_values;   ///< r values, descending
  MatD v;                 ///< n x r with orthonormal columns  (A = U S V^T)
  std::size_t sweeps = 0; ///< Jacobi sweeps used
};

struct SvdOptions {
  std::size_t max_sweeps = 60;
  double tolerance = 1e-12;  ///< off-diagonal convergence threshold
};

/// Thin SVD of an arbitrary m x n matrix (internally transposes if m < n).
SvdResult svd(const MatD& a, const SvdOptions& options = {});

/// Largest singular value of A.
double largest_singular_value(const MatD& a, const SvdOptions& options = {});

/// Moore–Penrose pseudo-inverse with tolerance-based rank truncation.
/// tol < 0 selects the NumPy-style default max(m,n) * eps * sigma_max.
MatD pseudo_inverse(const MatD& a, double tol = -1.0);

}  // namespace oselm::linalg
