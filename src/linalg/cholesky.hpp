// Cholesky factorization for symmetric positive-definite systems.
//
// The ReOS-ELM initial training solves (H0^T H0 + delta*I) P0 = I; with
// delta > 0 that Gram matrix is SPD, so Cholesky is both the fastest and
// the most numerically honest factorization for Eq. 8.
#pragma once

#include "linalg/matrix.hpp"

namespace oselm::linalg {

struct CholeskyDecomposition {
  MatD l;            ///< lower-triangular factor, A = L L^T
  bool spd = true;   ///< false when a pivot went non-positive
};

/// Factorizes a symmetric matrix (only the lower triangle is read).
CholeskyDecomposition cholesky_decompose(const MatD& a);

/// Solves A x = b given a successful factorization.
VecD cholesky_solve(const CholeskyDecomposition& f, const VecD& b);

/// Inverse of an SPD matrix; throws std::runtime_error when not SPD.
MatD inverse_spd(const MatD& a);

}  // namespace oselm::linalg
