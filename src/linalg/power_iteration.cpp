#include "linalg/power_iteration.hpp"

#include <cmath>

#include "linalg/ops.hpp"

namespace oselm::linalg {

PowerIterationResult power_iteration_sigma_max(
    const MatD& a, util::Rng& rng, const PowerIterationOptions& options) {
  PowerIterationResult result;
  if (a.empty()) return result;

  VecD v(a.cols());
  for (auto& x : v) x = rng.normal();
  double v_norm = norm2(v);
  if (v_norm == 0.0) {
    v.assign(a.cols(), 0.0);
    v[0] = 1.0;
    v_norm = 1.0;
  }
  for (auto& x : v) x /= v_norm;

  double sigma_prev = 0.0;
  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    result.iterations = it + 1;
    VecD av = matvec(a, v);          // A v
    const double sigma = norm2(av);  // ||A v|| -> sigma for unit v
    if (sigma == 0.0) {
      result.sigma_max = 0.0;
      result.converged = true;
      break;
    }
    VecD atav = matvec_t(a, av);  // A^T A v
    const double atav_norm = norm2(atav);
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = atav[i] / atav_norm;

    result.sigma_max = sigma;
    if (it > 0 &&
        std::abs(sigma - sigma_prev) <= options.tolerance * sigma) {
      result.converged = true;
      break;
    }
    sigma_prev = sigma;
  }
  // One final Rayleigh-style refinement with the converged vector.
  const VecD av = matvec(a, v);
  result.sigma_max = norm2(av);
  result.right_vector = std::move(v);
  return result;
}

}  // namespace oselm::linalg
