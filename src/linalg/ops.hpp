// Core dense operations. The double-precision GEMM is cache-blocked and
// OpenMP-parallel; generic element-wise helpers are header templates.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace oselm::linalg {

/// C = A * B (shapes (m,k)x(k,n)). Blocked and OpenMP-parallel for sizes
/// where threading pays; falls back to the serial kernel for small inputs.
MatD matmul(const MatD& a, const MatD& b);

/// C = A^T * B without materializing A^T.
MatD matmul_at_b(const MatD& a, const MatD& b);

/// C = A * B^T without materializing B^T.
MatD matmul_a_bt(const MatD& a, const MatD& b);

/// y = A * x (matrix-vector product).
VecD matvec(const MatD& a, const VecD& x);

/// y = A * x into a caller-owned vector (resized to a.rows(), reusing its
/// capacity — allocation-free in steady state). `y` must not alias `x`.
void matvec_into(const MatD& a, const VecD& x, VecD& y);

/// y = A^T * x.
VecD matvec_t(const MatD& a, const VecD& x);

/// Element-wise sum / difference / scale.
MatD add(const MatD& a, const MatD& b);
MatD sub(const MatD& a, const MatD& b);
MatD scale(const MatD& a, double factor);

/// A += alpha * B in place.
void axpy_inplace(MatD& a, double alpha, const MatD& b);

/// Outer product column * row -> (u.size() x v.size()).
MatD outer(const VecD& u, const VecD& v);

/// Dot product of two equal-length vectors.
double dot(const VecD& u, const VecD& v);

/// Euclidean norm of a vector.
double norm2(const VecD& v);

/// Adds `value` to every diagonal element in place (A += value*I).
void add_diagonal_inplace(MatD& a, double value);

/// (A + A^T)/2, used to keep the OS-ELM P matrix numerically symmetric.
void symmetrize_inplace(MatD& a);

}  // namespace oselm::linalg
