#include "linalg/svd.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "linalg/ops.hpp"

namespace oselm::linalg {

namespace {

/// One-sided Jacobi SVD on a matrix with rows >= cols. Rotates column pairs
/// of a working copy of A until all pairs are numerically orthogonal; then
/// column norms are the singular values, normalized columns are U, and the
/// accumulated rotations are V.
SvdResult jacobi_svd_tall(const MatD& a, const SvdOptions& options) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  MatD w = a;                     // working copy whose columns converge to U*S
  MatD v = MatD::identity(n);

  std::size_t sweep = 0;
  for (; sweep < options.max_sweeps; ++sweep) {
    bool rotated = false;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        // Gram entries for the (p,q) column pair.
        double app = 0.0, aqq = 0.0, apq = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
          const double wp = w(i, p);
          const double wq = w(i, q);
          app += wp * wp;
          aqq += wq * wq;
          apq += wp * wq;
        }
        if (std::abs(apq) <=
            options.tolerance * std::sqrt(app * aqq) + 1e-300) {
          continue;
        }
        rotated = true;
        // Classic Jacobi rotation annihilating the (p,q) Gram entry.
        const double zeta = (aqq - app) / (2.0 * apq);
        const double t = (zeta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (std::size_t i = 0; i < m; ++i) {
          const double wp = w(i, p);
          const double wq = w(i, q);
          w(i, p) = c * wp - s * wq;
          w(i, q) = s * wp + c * wq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double vp = v(i, p);
          const double vq = v(i, q);
          v(i, p) = c * vp - s * vq;
          v(i, q) = s * vp + c * vq;
        }
      }
    }
    if (!rotated) break;
  }

  // Extract singular values (column norms) and normalize U.
  SvdResult out{MatD(m, n), VecD(n, 0.0), v, sweep};
  for (std::size_t j = 0; j < n; ++j) {
    double norm_sq = 0.0;
    for (std::size_t i = 0; i < m; ++i) norm_sq += w(i, j) * w(i, j);
    const double sigma = std::sqrt(norm_sq);
    out.singular_values[j] = sigma;
    if (sigma > 0.0) {
      for (std::size_t i = 0; i < m; ++i) out.u(i, j) = w(i, j) / sigma;
    }
  }

  // Sort descending by singular value (stable permutation of U, S, V).
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t x, std::size_t y) {
                     return out.singular_values[x] > out.singular_values[y];
                   });
  SvdResult sorted{MatD(m, n), VecD(n, 0.0), MatD(n, n), sweep};
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t src = order[j];
    sorted.singular_values[j] = out.singular_values[src];
    for (std::size_t i = 0; i < m; ++i) sorted.u(i, j) = out.u(i, src);
    for (std::size_t i = 0; i < n; ++i) sorted.v(i, j) = out.v(i, src);
  }
  return sorted;
}

}  // namespace

SvdResult svd(const MatD& a, const SvdOptions& options) {
  if (a.empty()) return {};
  if (a.rows() >= a.cols()) return jacobi_svd_tall(a, options);
  // A = U S V^T  <=>  A^T = V S U^T: factor the transpose and swap.
  SvdResult t = jacobi_svd_tall(a.transposed(), options);
  return SvdResult{std::move(t.v), std::move(t.singular_values),
                   std::move(t.u), t.sweeps};
}

double largest_singular_value(const MatD& a, const SvdOptions& options) {
  const auto result = svd(a, options);
  if (result.singular_values.empty()) return 0.0;
  return result.singular_values.front();
}

MatD pseudo_inverse(const MatD& a, double tol) {
  const auto f = svd(a);
  if (f.singular_values.empty()) return a.transposed();
  const double sigma_max = f.singular_values.front();
  if (tol < 0.0) {
    tol = static_cast<double>(std::max(a.rows(), a.cols())) *
          std::numeric_limits<double>::epsilon() * sigma_max;
  }
  // A^+ = V S^+ U^T with reciprocal of singular values above tolerance.
  const std::size_t r = f.singular_values.size();
  MatD v_scaled = f.v;  // scale columns of V by 1/sigma
  for (std::size_t j = 0; j < r; ++j) {
    const double sigma = f.singular_values[j];
    const double inv = sigma > tol ? 1.0 / sigma : 0.0;
    for (std::size_t i = 0; i < v_scaled.rows(); ++i) v_scaled(i, j) *= inv;
  }
  return matmul_a_bt(v_scaled, f.u);
}

}  // namespace oselm::linalg
