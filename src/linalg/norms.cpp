#include "linalg/norms.hpp"

#include <cmath>

#include "linalg/svd.hpp"

namespace oselm::linalg {

double frobenius_norm(const MatD& a) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a.data()[i] * a.data()[i];
  return std::sqrt(acc);
}

double spectral_norm(const MatD& a) { return largest_singular_value(a); }

double infinity_norm(const MatD& a) {
  double worst = 0.0;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    double row_sum = 0.0;
    for (std::size_t c = 0; c < a.cols(); ++c) row_sum += std::abs(a(r, c));
    worst = std::max(worst, row_sum);
  }
  return worst;
}

double max_abs(const MatD& a) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a.data()[i]));
  }
  return worst;
}

}  // namespace oselm::linalg
