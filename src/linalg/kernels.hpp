// SIMD kernel layer for the OS-ELM hot paths.
//
// Every kernel has two implementations selected by a runtime dispatcher:
//   * a portable scalar reference (the exact pre-SIMD semantics), and
//   * an AVX2/FMA implementation compiled only when the toolchain supports
//     `-mavx2 -mfma` (see src/CMakeLists.txt) and used only when the CPU
//     reports both features at runtime.
//
// Dispatch rules:
//   * `OSELM_SIMD=off|0|false|no` in the environment forces the scalar
//     reference everywhere (debugging and exact-reference tests);
//   * set_simd_enabled() overrides the environment for in-process A/B
//     measurement (bench_train_path) and the kernel equivalence tests.
//
// Numerical contract:
//   * double kernels: the AVX2 path fuses multiply-adds (FMA) and
//     vector-reduces dot products, so results may differ from the scalar
//     reference at the last few ulps (tests pin <= 1e-12 relative).
//     Within ONE dispatch mode the kernels are mutually bit-consistent:
//     `fused_act_dot` reproduces `act_combine` + `dot` exactly, and the
//     backend prediction paths built on them stay bit-identical to each
//     other (the backend-contract EXPECT_DOUBLE_EQ pins rely on this).
//   * q20_* kernels: bit-exact against the scalar reference in BOTH
//     modes, including the saturation counters — the rank-1 update and
//     MAC loops mirror fixed::Q20 semantics (round-to-nearest multiply,
//     per-step saturating accumulate). This is the FPGA fidelity
//     contract: OSELM_SIMD never changes a fixed-point result.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace oselm::linalg::kernels {

// ---------------------------------------------------------------------------
// Dispatch control
// ---------------------------------------------------------------------------

/// True when an AVX2/FMA kernel set was compiled in AND this CPU supports
/// it. Independent of the OSELM_SIMD flag.
[[nodiscard]] bool simd_available() noexcept;

/// True when the SIMD kernel set is active: available, not disabled via
/// `OSELM_SIMD=off` (read once), and not overridden by set_simd_enabled().
[[nodiscard]] bool simd_enabled() noexcept;

/// Programmatic override of the environment flag (benches and tests that
/// A/B both kernel sets in one process). Enabling is a no-op when no SIMD
/// set is available. Not thread-safe against concurrent kernel calls —
/// flip it only between measurement phases.
void set_simd_enabled(bool enabled) noexcept;

/// Drops any set_simd_enabled() override and returns to following the
/// OSELM_SIMD environment flag — the correct "restore defaults" for code
/// that toggled the dispatch temporarily.
void reset_simd_override() noexcept;

/// "avx2" or "scalar" — whichever set simd_enabled() resolves to.
[[nodiscard]] const char* active_kernel_set() noexcept;

// ---------------------------------------------------------------------------
// Double-precision kernels
// ---------------------------------------------------------------------------

/// Hidden-layer activation, mirroring elm::Activation (kernels cannot
/// depend on the elm layer; elm::kernel_act maps between the two).
enum class Act { kReLU, kSigmoid, kTanh, kLinear };

/// sum_i a[i] * b[i].
[[nodiscard]] double dot(const double* a, const double* b,
                         std::size_t n) noexcept;

/// y[i] += a * x[i].
void axpy(double* y, double a, const double* x, std::size_t n) noexcept;

/// h[i] = act(h[i] + bias[i]) — the tail of the hidden-layer projection.
void bias_activate(double* h, const double* bias, std::size_t n,
                   Act act) noexcept;

/// h_out[i] = act(shared[i] + code * last_row[i] + bias[i]) — the
/// per-action rank-1 correction on a precomputed shared state projection.
void act_combine(const double* shared, const double* last_row, double code,
                 const double* bias, double* h_out, std::size_t n,
                 Act act) noexcept;

/// Fused act_combine + dot against the output weights:
///   sum_i act(shared[i] + code*last_row[i] + bias[i]) * beta[i]
/// Bit-identical to act_combine into a buffer followed by dot(buffer,
/// beta) under the active dispatch mode.
[[nodiscard]] double fused_act_dot(const double* shared,
                                   const double* last_row, double code,
                                   const double* bias, const double* beta,
                                   std::size_t n, Act act) noexcept;

/// Symmetric rank-1 update of a row-major n x n matrix:
///   P <- (P - (u * inv) u^T) * p_scale
/// Only the upper triangle is computed; the lower triangle is mirrored
/// from it afterwards, so P is exactly symmetric on return. p_scale == 1
/// takes the cheaper no-reinflation path (FOS-ELM lambda == 1).
///
/// At n >= 512 the update is sharded across an internal ThreadPool
/// (disjoint row bands of the upper triangle, then disjoint mirror bands
/// behind a barrier). Every row's arithmetic is independent of every
/// other row's, so the result is BIT-IDENTICAL to the single-threaded
/// kernel for any thread count. OSELM_P_UPDATE_THREADS sizes the pool
/// (unset/0 = hardware concurrency, 1 = always single-threaded).
void sym_rank1_update(double* p, std::size_t n, const double* u, double inv,
                      double p_scale) noexcept;

/// Update phase of sym_rank1_update restricted to rows
/// [row_begin, row_end): row i gets row[j] = (row[j] - (u[i]*inv)*u[j])
/// * p_scale for j >= i. Rows never read each other, so any partition of
/// [0, n) reproduces the full kernel's upper triangle bit-for-bit — this
/// is the parallel sharding primitive (and the test oracle for it).
void sym_rank1_update_rows(double* p, std::size_t n, std::size_t row_begin,
                           std::size_t row_end, const double* u, double inv,
                           double p_scale) noexcept;

/// Mirror phase: copies the (final) upper triangle into rows
/// [row_begin, row_end) of the lower triangle (row[j] = p[j*n+i], j < i).
/// Pure copies — bit-identical for any partition; the upper triangle must
/// not change concurrently.
void mirror_lower_rows(double* p, std::size_t n, std::size_t row_begin,
                       std::size_t row_end) noexcept;

/// The load-balanced row-band boundaries the sharded P-update schedules:
/// `bands + 1` entries each, equal-triangle-area splits (update row i
/// costs n - i elements, mirror row i costs i) quantized to multiples of
/// 16 so the tiled mirror keeps its fast path. Shared with
/// bench_micro_ops so the benchmark times the production schedule.
void p_update_band_bounds(std::size_t n, std::size_t bands,
                          std::vector<std::size_t>& update_bounds,
                          std::vector<std::size_t>& mirror_bounds);

/// Symmetric rank-k downdate for the general-k OS-ELM chunk update
/// (Eq. 5): P -= G U^T where G = U K with K = K^T, so G U^T is
/// symmetric. `gt` and `ut` are G^T and U^T as k x n row-major blocks
/// (row c is column c of G / U, contiguous for the axpy sweeps). Only the
/// upper triangle is computed (k dispatched-axpy sweeps per row — FMA
/// under SIMD) and mirrored down, so P stays exactly symmetric; k == 1
/// matches sym_rank1_update's p_scale == 1 arithmetic.
void sym_rankk_downdate(double* p, std::size_t n, const double* gt,
                        const double* ut, std::size_t k) noexcept;

// ---------------------------------------------------------------------------
// Q20 fixed-point kernels (raw int32 words, fixed::Q20 semantics)
// ---------------------------------------------------------------------------
//
// All q20_* kernels are bit-exact against fixed::Q20 operator arithmetic,
// including saturation events, which are reported through Q20SatCounts so
// the caller can fold them into fixed::overflow_stats(). The AVX2 paths
// saturate in-line and fall back to the scalar reference for any vector
// group that observed a saturation (rare), so values AND counts always
// match the reference.

struct Q20SatCounts {
  std::uint64_t add = 0;         ///< add/sub saturations
  std::uint64_t mul = 0;         ///< multiply saturations
  std::uint64_t conversion = 0;  ///< double -> Q20 saturations
};

/// out[j] = [relu]( init[j] + sum_{i<rows} x[i] * a(i, j) ) for a
/// row-major `rows x units` matrix — the single-MAC-unit hidden-layer
/// dataflow (bias-first, features in index order, per-step saturation).
void q20_hidden_mac(const std::int32_t* a, std::size_t rows,
                    std::size_t units, const std::int32_t* x,
                    const std::int32_t* init, std::int32_t* out, bool relu,
                    Q20SatCounts& sat) noexcept;

/// Sequential saturating dot with seed `init`:
///   acc = init; for j: acc += a[j] * b[j]  (Q20 ops at every step).
[[nodiscard]] std::int32_t q20_dot(const std::int32_t* a,
                                   const std::int32_t* b, std::size_t n,
                                   std::int32_t init,
                                   Q20SatCounts& sat) noexcept;

/// acc = 0; for j: acc += relu(shared[j] + code*last_row[j]) * beta[j]
/// — the fused per-action activation + output MAC of the predict path.
[[nodiscard]] std::int32_t q20_action_dot(const std::int32_t* shared,
                                          const std::int32_t* last_row,
                                          std::int32_t code,
                                          const std::int32_t* beta,
                                          std::size_t units,
                                          Q20SatCounts& sat) noexcept;

/// y[i] = q20_dot(row i of the row-major n x n matrix, x, n, 0).
void q20_matvec(const std::int32_t* m, std::size_t n, const std::int32_t* x,
                std::int32_t* y, Q20SatCounts& sat) noexcept;

/// Rank-1 downdate P -= (u * inv) u^T:
///   scaled[i] = u[i] * inv;  p(i, j) -= scaled[i] * u[j]
/// `scaled_ws` is caller-owned scratch of length n (allocation-free).
void q20_rank1_downdate(std::int32_t* p, std::size_t n,
                        const std::int32_t* u, std::int32_t inv,
                        std::int32_t* scaled_ws, Q20SatCounts& sat) noexcept;

/// y[j] += a * x[j] (the beta update).
void q20_axpy(std::int32_t* y, std::int32_t a, const std::int32_t* x,
              std::size_t n, Q20SatCounts& sat) noexcept;

/// dst[i] = Q20::from_double(src[i]) — round-to-nearest, saturating.
void q20_quantize(const double* src, std::int32_t* dst, std::size_t n,
                  Q20SatCounts& sat) noexcept;

/// dst[i] = src[i] / 2^20 (exact — Q20 values are dyadic rationals).
void q20_dequantize(const std::int32_t* src, double* dst,
                    std::size_t n) noexcept;

// ---------------------------------------------------------------------------
// Scalar reference entry points (always the portable implementations,
// regardless of dispatch state) — used by the kernel equivalence tests
// and the bench_train_path baseline.
// ---------------------------------------------------------------------------
namespace scalar {

[[nodiscard]] double dot(const double* a, const double* b,
                         std::size_t n) noexcept;
void axpy(double* y, double a, const double* x, std::size_t n) noexcept;
void bias_activate(double* h, const double* bias, std::size_t n,
                   Act act) noexcept;
void act_combine(const double* shared, const double* last_row, double code,
                 const double* bias, double* h_out, std::size_t n,
                 Act act) noexcept;
[[nodiscard]] double fused_act_dot(const double* shared,
                                   const double* last_row, double code,
                                   const double* bias, const double* beta,
                                   std::size_t n, Act act) noexcept;
void sym_rank1_update(double* p, std::size_t n, const double* u, double inv,
                      double p_scale) noexcept;
void sym_rank1_update_rows(double* p, std::size_t n, std::size_t row_begin,
                           std::size_t row_end, const double* u, double inv,
                           double p_scale) noexcept;
void mirror_lower_rows(double* p, std::size_t n, std::size_t row_begin,
                       std::size_t row_end) noexcept;
void q20_hidden_mac(const std::int32_t* a, std::size_t rows,
                    std::size_t units, const std::int32_t* x,
                    const std::int32_t* init, std::int32_t* out, bool relu,
                    Q20SatCounts& sat) noexcept;
[[nodiscard]] std::int32_t q20_dot(const std::int32_t* a,
                                   const std::int32_t* b, std::size_t n,
                                   std::int32_t init,
                                   Q20SatCounts& sat) noexcept;
[[nodiscard]] std::int32_t q20_action_dot(const std::int32_t* shared,
                                          const std::int32_t* last_row,
                                          std::int32_t code,
                                          const std::int32_t* beta,
                                          std::size_t units,
                                          Q20SatCounts& sat) noexcept;
void q20_matvec(const std::int32_t* m, std::size_t n, const std::int32_t* x,
                std::int32_t* y, Q20SatCounts& sat) noexcept;
void q20_rank1_downdate(std::int32_t* p, std::size_t n,
                        const std::int32_t* u, std::int32_t inv,
                        std::int32_t* scaled_ws, Q20SatCounts& sat) noexcept;
void q20_axpy(std::int32_t* y, std::int32_t a, const std::int32_t* x,
              std::size_t n, Q20SatCounts& sat) noexcept;
void q20_quantize(const double* src, std::int32_t* dst, std::size_t n,
                  Q20SatCounts& sat) noexcept;
void q20_dequantize(const std::int32_t* src, double* dst,
                    std::size_t n) noexcept;

}  // namespace scalar

}  // namespace oselm::linalg::kernels
