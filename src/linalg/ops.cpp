#include "linalg/ops.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <stdexcept>

#include "linalg/kernels.hpp"

#if defined(OSELM_HAVE_OPENMP)
#include <omp.h>
#endif

namespace oselm::linalg {

namespace {

constexpr std::size_t kBlock = 64;          // fits L1 for double tiles
constexpr std::size_t kParallelCutoff = 64 * 64 * 64;  // flops/2 heuristic

void require(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(what);
}

/// Serial i-k-j kernel over one row band [r0, r1); B is streamed row-wise
/// so the inner loop is unit-stride for both B and C.
void gemm_band(const MatD& a, const MatD& b, MatD& c, std::size_t r0,
               std::size_t r1) {
  const std::size_t k_dim = a.cols();
  const std::size_t n = b.cols();
  for (std::size_t i0 = r0; i0 < r1; i0 += kBlock) {
    const std::size_t i_end = std::min(i0 + kBlock, r1);
    for (std::size_t k0 = 0; k0 < k_dim; k0 += kBlock) {
      const std::size_t k_end = std::min(k0 + kBlock, k_dim);
      for (std::size_t i = i0; i < i_end; ++i) {
        double* c_row = c.row_ptr(i);
        const double* a_row = a.row_ptr(i);
        for (std::size_t k = k0; k < k_end; ++k) {
          const double a_ik = a_row[k];
          const double* b_row = b.row_ptr(k);
          for (std::size_t j = 0; j < n; ++j) c_row[j] += a_ik * b_row[j];
        }
      }
    }
  }
}

}  // namespace

MatD matmul(const MatD& a, const MatD& b) {
  require(a.cols() == b.rows(), "matmul: inner dimension mismatch");
  MatD c(a.rows(), b.cols());
  const std::size_t work = a.rows() * a.cols() * b.cols();
#if defined(OSELM_HAVE_OPENMP)
  if (work >= kParallelCutoff) {
    // Parallelize over multi-row bands, not single rows: a height-1 band
    // defeats gemm_band's i-blocking and re-streams all of B once per row.
    // Cap the band height at kBlock for the L1 tiling, but shrink it when
    // the matrix has fewer than threads*kBlock rows so every core still
    // gets work (e.g. 70 rows on 8 cores -> 9-row bands, not 2x64).
    const std::size_t rows = a.rows();
    const auto threads =
        static_cast<std::size_t>(std::max(1, omp_get_max_threads()));
    const std::size_t per_thread = (rows + threads - 1) / threads;
    const std::size_t band_h =
        std::max<std::size_t>(1, std::min(kBlock, per_thread));
    const auto bands = static_cast<std::ptrdiff_t>((rows + band_h - 1) /
                                                   band_h);
#pragma omp parallel for schedule(static)
    for (std::ptrdiff_t band = 0; band < bands; ++band) {
      const std::size_t r0 = static_cast<std::size_t>(band) * band_h;
      gemm_band(a, b, c, r0, std::min(r0 + band_h, rows));
    }
    return c;
  }
#else
  (void)work;
#endif
  gemm_band(a, b, c, 0, a.rows());
  return c;
}

MatD matmul_at_b(const MatD& a, const MatD& b) {
  require(a.rows() == b.rows(), "matmul_at_b: row dimension mismatch");
  MatD c(a.cols(), b.cols());
  // C[i][j] = sum_k A[k][i] * B[k][j]; accumulate rank-1 updates row by row
  // of A/B so all accesses stay unit-stride.
  for (std::size_t k = 0; k < a.rows(); ++k) {
    const double* a_row = a.row_ptr(k);
    const double* b_row = b.row_ptr(k);
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const double a_ki = a_row[i];
      if (a_ki == 0.0) continue;
      double* c_row = c.row_ptr(i);
      for (std::size_t j = 0; j < b.cols(); ++j) c_row[j] += a_ki * b_row[j];
    }
  }
  return c;
}

MatD matmul_a_bt(const MatD& a, const MatD& b) {
  require(a.cols() == b.cols(), "matmul_a_bt: column dimension mismatch");
  MatD c(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* a_row = a.row_ptr(i);
    double* c_row = c.row_ptr(i);
    for (std::size_t j = 0; j < b.rows(); ++j) {
      const double* b_row = b.row_ptr(j);
      double acc = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) acc += a_row[k] * b_row[k];
      c_row[j] = acc;
    }
  }
  return c;
}

VecD matvec(const MatD& a, const VecD& x) {
  VecD y;
  matvec_into(a, x, y);
  return y;
}

void matvec_into(const MatD& a, const VecD& x, VecD& y) {
  require(a.cols() == x.size(), "matvec: dimension mismatch");
  y.assign(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    y[i] = kernels::dot(a.row_ptr(i), x.data(), a.cols());
  }
}

VecD matvec_t(const MatD& a, const VecD& x) {
  require(a.rows() == x.size(), "matvec_t: dimension mismatch");
  VecD y(a.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* row = a.row_ptr(i);
    const double xi = x[i];
    if (xi == 0.0) continue;
    for (std::size_t j = 0; j < a.cols(); ++j) y[j] += xi * row[j];
  }
  return y;
}

MatD add(const MatD& a, const MatD& b) {
  require(a.rows() == b.rows() && a.cols() == b.cols(),
          "add: shape mismatch");
  MatD c(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.size(); ++i) {
    c.data()[i] = a.data()[i] + b.data()[i];
  }
  return c;
}

MatD sub(const MatD& a, const MatD& b) {
  require(a.rows() == b.rows() && a.cols() == b.cols(),
          "sub: shape mismatch");
  MatD c(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.size(); ++i) {
    c.data()[i] = a.data()[i] - b.data()[i];
  }
  return c;
}

MatD scale(const MatD& a, double factor) {
  MatD c(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.size(); ++i) c.data()[i] = a.data()[i] * factor;
  return c;
}

void axpy_inplace(MatD& a, double alpha, const MatD& b) {
  require(a.rows() == b.rows() && a.cols() == b.cols(),
          "axpy_inplace: shape mismatch");
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] += alpha * b.data()[i];
}

MatD outer(const VecD& u, const VecD& v) {
  MatD c(u.size(), v.size());
  for (std::size_t i = 0; i < u.size(); ++i) {
    double* row = c.row_ptr(i);
    const double ui = u[i];
    for (std::size_t j = 0; j < v.size(); ++j) row[j] = ui * v[j];
  }
  return c;
}

double dot(const VecD& u, const VecD& v) {
  require(u.size() == v.size(), "dot: length mismatch");
  return kernels::dot(u.data(), v.data(), u.size());
}

double norm2(const VecD& v) { return std::sqrt(dot(v, v)); }

void add_diagonal_inplace(MatD& a, double value) {
  const std::size_t n = std::min(a.rows(), a.cols());
  for (std::size_t i = 0; i < n; ++i) a(i, i) += value;
}

void symmetrize_inplace(MatD& a) {
  require(a.rows() == a.cols(), "symmetrize_inplace: matrix not square");
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = i + 1; j < a.cols(); ++j) {
      const double avg = 0.5 * (a(i, j) + a(j, i));
      a(i, j) = avg;
      a(j, i) = avg;
    }
  }
}

}  // namespace oselm::linalg
