#include "linalg/kernels.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "linalg/kernels_q20_inline.hpp"
#include "util/env_flags.hpp"
#include "util/thread_pool.hpp"

namespace oselm::linalg::kernels {

// Declarations of the AVX2/FMA set (defined in kernels_avx2.cpp, which is
// compiled with -mavx2 -mfma only when the toolchain supports them — see
// src/CMakeLists.txt). Never called unless simd_enabled().
#if defined(OSELM_HAVE_AVX2_KERNELS)
namespace avx2 {
double dot(const double* a, const double* b, std::size_t n) noexcept;
void axpy(double* y, double a, const double* x, std::size_t n) noexcept;
void bias_activate(double* h, const double* bias, std::size_t n,
                   Act act) noexcept;
void act_combine(const double* shared, const double* last_row, double code,
                 const double* bias, double* h_out, std::size_t n,
                 Act act) noexcept;
double fused_act_dot(const double* shared, const double* last_row,
                     double code, const double* bias, const double* beta,
                     std::size_t n, Act act) noexcept;
void sym_rank1_update_rows(double* p, std::size_t n, std::size_t row_begin,
                           std::size_t row_end, const double* u, double inv,
                           double p_scale) noexcept;
void mirror_lower_rows(double* p, std::size_t n, std::size_t row_begin,
                       std::size_t row_end) noexcept;
void q20_hidden_mac(const std::int32_t* a, std::size_t rows,
                    std::size_t units, const std::int32_t* x,
                    const std::int32_t* init, std::int32_t* out, bool relu,
                    Q20SatCounts& sat) noexcept;
std::int32_t q20_dot(const std::int32_t* a, const std::int32_t* b,
                     std::size_t n, std::int32_t init,
                     Q20SatCounts& sat) noexcept;
std::int32_t q20_action_dot(const std::int32_t* shared,
                            const std::int32_t* last_row, std::int32_t code,
                            const std::int32_t* beta, std::size_t units,
                            Q20SatCounts& sat) noexcept;
void q20_rank1_downdate(std::int32_t* p, std::size_t n,
                        const std::int32_t* u, std::int32_t inv,
                        std::int32_t* scaled_ws, Q20SatCounts& sat) noexcept;
void q20_axpy(std::int32_t* y, std::int32_t a, const std::int32_t* x,
              std::size_t n, Q20SatCounts& sat) noexcept;
void q20_quantize(const double* src, std::int32_t* dst, std::size_t n,
                  Q20SatCounts& sat) noexcept;
void q20_dequantize(const std::int32_t* src, double* dst,
                    std::size_t n) noexcept;
}  // namespace avx2
#endif

// ---------------------------------------------------------------------------
// Dispatch state
// ---------------------------------------------------------------------------

namespace {

/// -1: follow the OSELM_SIMD environment flag; 0/1: explicit override.
std::atomic<int> g_simd_override{-1};

bool env_allows_simd() noexcept {
  static const bool allowed = util::env_bool("OSELM_SIMD", true);
  return allowed;
}

}  // namespace

bool simd_available() noexcept {
#if defined(OSELM_HAVE_AVX2_KERNELS)
  static const bool available =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return available;
#else
  return false;
#endif
}

bool simd_enabled() noexcept {
  if (!simd_available()) return false;
  const int override_state = g_simd_override.load(std::memory_order_relaxed);
  if (override_state >= 0) return override_state == 1;
  return env_allows_simd();
}

void set_simd_enabled(bool enabled) noexcept {
  g_simd_override.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

void reset_simd_override() noexcept {
  g_simd_override.store(-1, std::memory_order_relaxed);
}

const char* active_kernel_set() noexcept {
  return simd_enabled() ? "avx2" : "scalar";
}

// ---------------------------------------------------------------------------
// Scalar reference — double kernels
// ---------------------------------------------------------------------------
//
// These loops reproduce the pre-SIMD arithmetic exactly: plain multiply
// then add (no FMA contraction — the TU is compiled for the baseline
// target), strictly sequential reductions.

namespace scalar {

namespace {

inline double act_apply(Act act, double x) noexcept {
  switch (act) {
    case Act::kReLU:
      return x >= 0.0 ? x : 0.0;
    case Act::kSigmoid:
      return 1.0 / (1.0 + std::exp(-x));
    case Act::kTanh:
      return std::tanh(x);
    case Act::kLinear:
      return x;
  }
  return x;
}

}  // namespace

double dot(const double* a, const double* b, std::size_t n) noexcept {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

void axpy(double* y, double a, const double* x, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

void bias_activate(double* h, const double* bias, std::size_t n,
                   Act act) noexcept {
  for (std::size_t i = 0; i < n; ++i) h[i] = act_apply(act, h[i] + bias[i]);
}

void act_combine(const double* shared, const double* last_row, double code,
                 const double* bias, double* h_out, std::size_t n,
                 Act act) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    h_out[i] = act_apply(act, shared[i] + code * last_row[i] + bias[i]);
  }
}

double fused_act_dot(const double* shared, const double* last_row,
                     double code, const double* bias, const double* beta,
                     std::size_t n, Act act) noexcept {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += act_apply(act, shared[i] + code * last_row[i] + bias[i]) * beta[i];
  }
  return acc;
}

void sym_rank1_update_rows(double* p, std::size_t n, std::size_t row_begin,
                           std::size_t row_end, const double* u, double inv,
                           double p_scale) noexcept {
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const double scaled = u[i] * inv;
    double* row = p + i * n;
    if (p_scale == 1.0) {
      if (scaled == 0.0) continue;
      for (std::size_t j = i; j < n; ++j) row[j] -= scaled * u[j];
    } else {
      for (std::size_t j = i; j < n; ++j) {
        row[j] = (row[j] - scaled * u[j]) * p_scale;
      }
    }
  }
}

void mirror_lower_rows(double* p, std::size_t n, std::size_t row_begin,
                       std::size_t row_end) noexcept {
  // Mirror the upper triangle down so P is exactly symmetric — replaces
  // the seed's full-matrix second pass. Tiled so each 16x16 block of
  // source cache lines is reused across the block's rows instead of
  // being streamed once per element (a plain column walk thrashes L1 at
  // N-tilde >= 128). Tile blocks are clamped to [row_begin, row_end) so
  // disjoint bands partition the copies exactly.
  constexpr std::size_t kTile = 16;
  for (std::size_t t0 = (row_begin / kTile) * kTile; t0 < row_end;
       t0 += kTile) {
    const std::size_t i0 = std::max(t0, row_begin);
    const std::size_t i1 = std::min({t0 + kTile, row_end, n});
    for (std::size_t i = std::max(i0, t0 + 1); i < i1; ++i) {  // diag tile
      double* row = p + i * n;
      for (std::size_t j = t0; j < i; ++j) row[j] = p[j * n + i];
    }
    for (std::size_t j0 = 0; j0 < t0; j0 += kTile) {  // tiles left of it
      const std::size_t j1 = j0 + kTile;  // full tile: j1 <= t0 <= n
      for (std::size_t i = i0; i < i1; ++i) {
        double* row = p + i * n;
        for (std::size_t j = j0; j < j1; ++j) row[j] = p[j * n + i];
      }
    }
  }
}

void sym_rank1_update(double* p, std::size_t n, const double* u, double inv,
                      double p_scale) noexcept {
  sym_rank1_update_rows(p, n, 0, n, u, inv, p_scale);
  mirror_lower_rows(p, n, 0, n);
}

// ---------------------------------------------------------------------------
// Scalar reference — Q20 kernels (fixed::Q20 semantics on raw words,
// primitives shared with the AVX2 TU via kernels_q20_inline.hpp)
// ---------------------------------------------------------------------------

using q20detail::q_add;
using q20detail::q_from_double;
using q20detail::q_mul;
using q20detail::q_relu;
using q20detail::q_sub;

void q20_hidden_mac(const std::int32_t* a, std::size_t rows,
                    std::size_t units, const std::int32_t* x,
                    const std::int32_t* init, std::int32_t* out, bool relu,
                    Q20SatCounts& sat) noexcept {
  for (std::size_t j = 0; j < units; ++j) {
    std::int32_t acc = init[j];
    for (std::size_t i = 0; i < rows; ++i) {
      acc = q_add(acc, q_mul(x[i], a[i * units + j], sat), sat);
    }
    out[j] = relu ? q_relu(acc) : acc;
  }
}

std::int32_t q20_dot(const std::int32_t* a, const std::int32_t* b,
                     std::size_t n, std::int32_t init,
                     Q20SatCounts& sat) noexcept {
  std::int32_t acc = init;
  for (std::size_t i = 0; i < n; ++i) {
    acc = q_add(acc, q_mul(a[i], b[i], sat), sat);
  }
  return acc;
}

std::int32_t q20_action_dot(const std::int32_t* shared,
                            const std::int32_t* last_row, std::int32_t code,
                            const std::int32_t* beta, std::size_t units,
                            Q20SatCounts& sat) noexcept {
  std::int32_t acc = 0;
  for (std::size_t j = 0; j < units; ++j) {
    const std::int32_t h =
        q_relu(q_add(shared[j], q_mul(code, last_row[j], sat), sat));
    acc = q_add(acc, q_mul(h, beta[j], sat), sat);
  }
  return acc;
}

void q20_matvec(const std::int32_t* m, std::size_t n, const std::int32_t* x,
                std::int32_t* y, Q20SatCounts& sat) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = scalar::q20_dot(m + i * n, x, n, 0, sat);
  }
}

void q20_rank1_downdate(std::int32_t* p, std::size_t n,
                        const std::int32_t* u, std::int32_t inv,
                        std::int32_t* scaled_ws, Q20SatCounts& sat) noexcept {
  for (std::size_t i = 0; i < n; ++i) scaled_ws[i] = q_mul(u[i], inv, sat);
  for (std::size_t i = 0; i < n; ++i) {
    const std::int32_t scaled = scaled_ws[i];
    std::int32_t* row = p + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      row[j] = q_sub(row[j], q_mul(scaled, u[j], sat), sat);
    }
  }
}

void q20_axpy(std::int32_t* y, std::int32_t a, const std::int32_t* x,
              std::size_t n, Q20SatCounts& sat) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = q_add(y[i], q_mul(a, x[i], sat), sat);
  }
}

void q20_quantize(const double* src, std::int32_t* dst, std::size_t n,
                  Q20SatCounts& sat) noexcept {
  for (std::size_t i = 0; i < n; ++i) dst[i] = q_from_double(src[i], sat);
}

void q20_dequantize(const std::int32_t* src, double* dst,
                    std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = static_cast<double>(src[i]) / 1048576.0;
  }
}

}  // namespace scalar

// ---------------------------------------------------------------------------
// Dispatched entry points
// ---------------------------------------------------------------------------

#if defined(OSELM_HAVE_AVX2_KERNELS)
#define OSELM_DISPATCH(fn, ...) \
  (simd_enabled() ? avx2::fn(__VA_ARGS__) : scalar::fn(__VA_ARGS__))
#else
#define OSELM_DISPATCH(fn, ...) scalar::fn(__VA_ARGS__)
#endif

double dot(const double* a, const double* b, std::size_t n) noexcept {
  return OSELM_DISPATCH(dot, a, b, n);
}

void axpy(double* y, double a, const double* x, std::size_t n) noexcept {
  OSELM_DISPATCH(axpy, y, a, x, n);
}

void bias_activate(double* h, const double* bias, std::size_t n,
                   Act act) noexcept {
  OSELM_DISPATCH(bias_activate, h, bias, n, act);
}

void act_combine(const double* shared, const double* last_row, double code,
                 const double* bias, double* h_out, std::size_t n,
                 Act act) noexcept {
  OSELM_DISPATCH(act_combine, shared, last_row, code, bias, h_out, n, act);
}

double fused_act_dot(const double* shared, const double* last_row,
                     double code, const double* bias, const double* beta,
                     std::size_t n, Act act) noexcept {
  return OSELM_DISPATCH(fused_act_dot, shared, last_row, code, bias, beta, n,
                        act);
}

void sym_rank1_update_rows(double* p, std::size_t n, std::size_t row_begin,
                           std::size_t row_end, const double* u, double inv,
                           double p_scale) noexcept {
  OSELM_DISPATCH(sym_rank1_update_rows, p, n, row_begin, row_end, u, inv,
                 p_scale);
}

void mirror_lower_rows(double* p, std::size_t n, std::size_t row_begin,
                       std::size_t row_end) noexcept {
  OSELM_DISPATCH(mirror_lower_rows, p, n, row_begin, row_end);
}

namespace {

/// Rows below which sharding the P-update cannot pay for the hand-off:
/// at 512 the update touches 2 MB and each band still holds tens of
/// thousands of elements.
constexpr std::size_t kParallelPUpdateRows = 512;

/// OSELM_P_UPDATE_THREADS: unset/0 = hardware concurrency, 1 = always
/// single-threaded, k > 1 = exactly k workers. Read once.
std::size_t p_update_threads() noexcept {
  static const std::size_t threads = [] {
    const std::int64_t configured =
        util::env_int("OSELM_P_UPDATE_THREADS", 0);
    if (configured > 0) return static_cast<std::size_t>(configured);
    return std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }();
  return threads;
}

util::ThreadPool& p_update_pool(std::size_t threads) {
  static util::ThreadPool pool(threads);
  return pool;
}

/// Bit-identical parallel sharding: disjoint row bands of the upper-
/// triangle update, a parallel_for barrier, then disjoint mirror bands
/// (boundaries from p_update_band_bounds).
///
/// Exception safety inside a noexcept caller: the rank-1 update is NOT
/// idempotent, so a band must never run twice. Band bodies are noexcept
/// (a claimed band always completes); the only throws come from the
/// parallel_for submission machinery, after which completed bands are
/// identified by their flags — stragglers are finished serially. The
/// mirror phase is pure copies and may simply be redone in full.
void sym_rank1_update_sharded(double* p, std::size_t n, const double* u,
                              double inv, double p_scale,
                              const std::vector<std::size_t>& update_bounds,
                              const std::vector<std::size_t>& mirror_bounds,
                              std::vector<std::atomic<bool>>& done) {
  const std::size_t bands = update_bounds.size() - 1;
  util::ThreadPool& pool = p_update_pool(bands);
  try {
    pool.parallel_for(bands, [&](std::size_t b) {
      sym_rank1_update_rows(p, n, update_bounds[b], update_bounds[b + 1],
                            u, inv, p_scale);
      done[b].store(true, std::memory_order_release);
    });
  } catch (...) {
    // parallel_for drained every lane before rethrowing, so the flags
    // are final: finish exactly the bands that never ran.
    for (std::size_t b = 0; b < bands; ++b) {
      if (!done[b].load(std::memory_order_acquire)) {
        sym_rank1_update_rows(p, n, update_bounds[b], update_bounds[b + 1],
                              u, inv, p_scale);
      }
    }
  }
  try {
    pool.parallel_for(bands, [&](std::size_t b) {
      mirror_lower_rows(p, n, mirror_bounds[b], mirror_bounds[b + 1]);
    });
  } catch (...) {
    mirror_lower_rows(p, n, 0, n);  // copies: safe to redo in full
  }
}

}  // namespace

void p_update_band_bounds(std::size_t n, std::size_t bands,
                          std::vector<std::size_t>& update_bounds,
                          std::vector<std::size_t>& mirror_bounds) {
  const auto quantize16 = [n](double row) {
    const auto r = static_cast<std::size_t>(row);
    return std::min(n, (r / 16) * 16);
  };
  update_bounds.assign(bands + 1, 0);
  mirror_bounds.assign(bands + 1, 0);
  const auto nd = static_cast<double>(n);
  for (std::size_t b = 0; b <= bands; ++b) {
    const double frac = static_cast<double>(b) / static_cast<double>(bands);
    // Equal-area splits of the two triangles (see header comment).
    update_bounds[b] = quantize16(nd * (1.0 - std::sqrt(1.0 - frac)));
    mirror_bounds[b] = quantize16(nd * std::sqrt(frac));
  }
  update_bounds[bands] = n;
  mirror_bounds[bands] = n;
}

void sym_rank1_update(double* p, std::size_t n, const double* u, double inv,
                      double p_scale) noexcept {
  const std::size_t threads = p_update_threads();
  if (n >= kParallelPUpdateRows && threads > 1) {
    // All fallible setup happens BEFORE P is touched; if any of it
    // throws, P is pristine and the serial path below is a clean
    // fallback. Once sym_rank1_update_sharded is entered, it guarantees
    // every band runs exactly once regardless of submission failures.
    bool ready = false;
    std::vector<std::size_t> update_bounds;
    std::vector<std::size_t> mirror_bounds;
    std::vector<std::atomic<bool>> done;
    try {
      p_update_band_bounds(n, threads, update_bounds, mirror_bounds);
      done = std::vector<std::atomic<bool>>(threads);
      (void)p_update_pool(threads);  // lazy pool spawn may throw
      ready = true;
    } catch (...) {
      // Thread or allocation exhaustion: fall through to serial.
    }
    if (ready) {
      sym_rank1_update_sharded(p, n, u, inv, p_scale, update_bounds,
                               mirror_bounds, done);
      return;
    }
  }
  sym_rank1_update_rows(p, n, 0, n, u, inv, p_scale);
  mirror_lower_rows(p, n, 0, n);
}

void sym_rankk_downdate(double* p, std::size_t n, const double* gt,
                        const double* ut, std::size_t k) noexcept {
  // k dispatched-axpy sweeps per upper-triangle row (FMA lanes under
  // SIMD), then one mirror — G U^T is symmetric (G = U K, K = K^T), so
  // the lower triangle is a copy, not a recomputation.
  for (std::size_t i = 0; i < n; ++i) {
    double* row = p + i * n;
    for (std::size_t c = 0; c < k; ++c) {
      axpy(row + i, -gt[c * n + i], ut + c * n + i, n - i);
    }
  }
  mirror_lower_rows(p, n, 0, n);
}

void q20_hidden_mac(const std::int32_t* a, std::size_t rows,
                    std::size_t units, const std::int32_t* x,
                    const std::int32_t* init, std::int32_t* out, bool relu,
                    Q20SatCounts& sat) noexcept {
  OSELM_DISPATCH(q20_hidden_mac, a, rows, units, x, init, out, relu, sat);
}

std::int32_t q20_dot(const std::int32_t* a, const std::int32_t* b,
                     std::size_t n, std::int32_t init,
                     Q20SatCounts& sat) noexcept {
  return OSELM_DISPATCH(q20_dot, a, b, n, init, sat);
}

std::int32_t q20_action_dot(const std::int32_t* shared,
                            const std::int32_t* last_row, std::int32_t code,
                            const std::int32_t* beta, std::size_t units,
                            Q20SatCounts& sat) noexcept {
  return OSELM_DISPATCH(q20_action_dot, shared, last_row, code, beta, units,
                        sat);
}

void q20_matvec(const std::int32_t* m, std::size_t n, const std::int32_t* x,
                std::int32_t* y, Q20SatCounts& sat) noexcept {
#if defined(OSELM_HAVE_AVX2_KERNELS)
  if (simd_enabled()) {
    for (std::size_t i = 0; i < n; ++i) {
      y[i] = avx2::q20_dot(m + i * n, x, n, 0, sat);
    }
    return;
  }
#endif
  scalar::q20_matvec(m, n, x, y, sat);
}

void q20_rank1_downdate(std::int32_t* p, std::size_t n,
                        const std::int32_t* u, std::int32_t inv,
                        std::int32_t* scaled_ws, Q20SatCounts& sat) noexcept {
  OSELM_DISPATCH(q20_rank1_downdate, p, n, u, inv, scaled_ws, sat);
}

void q20_axpy(std::int32_t* y, std::int32_t a, const std::int32_t* x,
              std::size_t n, Q20SatCounts& sat) noexcept {
  OSELM_DISPATCH(q20_axpy, y, a, x, n, sat);
}

void q20_quantize(const double* src, std::int32_t* dst, std::size_t n,
                  Q20SatCounts& sat) noexcept {
  OSELM_DISPATCH(q20_quantize, src, dst, n, sat);
}

void q20_dequantize(const std::int32_t* src, double* dst,
                    std::size_t n) noexcept {
  OSELM_DISPATCH(q20_dequantize, src, dst, n);
}

#undef OSELM_DISPATCH

}  // namespace oselm::linalg::kernels
