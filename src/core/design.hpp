// The seven designs evaluated in §4.1, behind one factory.
//
//  (1) ELM                 — batch ELM Q-network (simplified IO + clipping)
//  (2) OS-ELM              — + sequential training and random update
//  (3) OS-ELM-L2           — + L2 regularization on beta (delta = 1)
//  (4) OS-ELM-Lipschitz    — + spectral normalization of alpha
//  (5) OS-ELM-L2-Lipschitz — both (delta = 0.5); the paper's best design
//  (6) DQN                 — three-layer backprop baseline
//  (7) FPGA                — (5) with predict/seq_train in the Q20
//                            fixed-point functional model + PL timing
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "rl/agent.hpp"

namespace oselm::core {

enum class Design {
  kElm,
  kOsElm,
  kOsElmL2,
  kOsElmLipschitz,
  kOsElmL2Lipschitz,
  kDqn,
  kFpga,
};

std::string_view design_name(Design design) noexcept;

/// Parses a design from its display name; throws std::invalid_argument.
Design design_from_name(std::string_view name);

/// All seven designs in the paper's order.
std::vector<Design> all_designs();

/// The six software designs compared in the Fig. 4 training curves.
std::vector<Design> software_designs();

struct AgentConfig {
  Design design = Design::kOsElmL2Lipschitz;
  std::size_t hidden_units = 64;   ///< N-tilde, swept over {32,64,128,192}
  std::size_t state_dim = 4;       ///< CartPole-v0
  std::size_t action_count = 2;
  /// Discount rate; the paper does not state gamma. 0.9 is used here: the
  /// shaped -1/0/+1 reward with clipped targets needs enough Q contrast
  /// between adjacent states (|Q| ~ gamma^steps-to-failure), and 0.99
  /// compresses that contrast below the function-approximation noise.
  double gamma = 0.9;
  double epsilon_greedy = 0.7;     ///< epsilon_1 (§4.1)
  double update_probability = 0.5; ///< epsilon_2 (§4.1)
  std::size_t target_sync_interval = 2;  ///< UPDATE_STEP (§4.1)
  /// L2 delta; negative selects the paper's per-design default
  /// (1.0 for OS-ELM-L2, 0.5 for OS-ELM-L2-Lipschitz and FPGA, else 0).
  double l2_delta = -1.0;
  std::uint64_t seed = 42;
  /// rl::BackendRegistry id for the OS-ELM designs; empty selects the
  /// per-design default ("software" for designs 2-5, "fpga-q20" for 7).
  /// Ignored by the ELM and DQN designs, which have no Q backend.
  std::string backend_id;

  /// Resolved delta after applying per-design defaults.
  [[nodiscard]] double resolved_delta() const noexcept;

  /// Resolved registry id after applying per-design defaults; empty for
  /// the backend-less designs.
  [[nodiscard]] std::string resolved_backend_id() const;
};

/// Builds the agent for a design. All designs share the Algorithm 1
/// hyper-parameters above; DQN additionally uses batch 32 replay + Adam.
rl::AgentPtr make_agent(const AgentConfig& config);

}  // namespace oselm::core
