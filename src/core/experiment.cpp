#include "core/experiment.hpp"

#include <mutex>

#include "env/registry.hpp"
#include "util/thread_pool.hpp"

namespace oselm::core {

rl::TrainResult run_experiment(const RunSpec& spec) {
  const env::EnvironmentPtr environment =
      env::make_environment(spec.env_id, spec.env_seed);
  // The environment is authoritative for the interface dimensions; this
  // keeps one RunSpec valid across CartPole, GridWorld, etc.
  AgentConfig agent_config = spec.agent;
  agent_config.state_dim = environment->observation_space().dimensions();
  agent_config.action_count = environment->action_space().n;
  const rl::AgentPtr agent = make_agent(agent_config);
  return rl::run_training(*agent, *environment, spec.trainer);
}

TrialSummary run_trials(const RunSpec& base, std::size_t trials,
                        std::size_t threads) {
  TrialSummary summary;
  summary.trials = trials;
  summary.per_trial_seconds.assign(trials, 0.0);
  summary.per_trial_solved.assign(trials, false);

  std::mutex merge_mutex;
  double time_sum = 0.0;
  double episode_sum = 0.0;

  const auto run_one = [&](std::size_t trial) {
    RunSpec spec = base;
    spec.agent.seed = base.agent.seed + trial;
    spec.env_seed = base.env_seed + 0x9e3779b9ULL * (trial + 1);
    const rl::TrainResult result = run_experiment(spec);
    const double seconds = result.breakdown.total_excluding_env();

    const std::scoped_lock lock(merge_mutex);
    summary.per_trial_seconds[trial] = seconds;
    summary.per_trial_solved[trial] = result.solved;
    if (result.solved) {
      ++summary.solved_count;
      time_sum += seconds;
      episode_sum += static_cast<double>(result.episodes);
      summary.mean_breakdown += result.breakdown;
    }
  };

  if (threads == 1 || trials <= 1) {
    for (std::size_t i = 0; i < trials; ++i) run_one(i);
  } else {
    util::ThreadPool pool(threads);
    pool.parallel_for(trials, run_one);
  }

  if (summary.solved_count > 0) {
    const auto n = static_cast<double>(summary.solved_count);
    summary.mean_time_to_complete = time_sum / n;
    summary.mean_episodes_to_complete = episode_sum / n;
    summary.mean_breakdown =
        summary.mean_breakdown.averaged_over(summary.solved_count);
  }
  return summary;
}

}  // namespace oselm::core
