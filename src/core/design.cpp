#include "core/design.hpp"

#include <stdexcept>

#include "rl/backend_registry.hpp"
#include "rl/dqn_agent.hpp"
#include "rl/elm_q_agent.hpp"
#include "rl/oselm_q_agent.hpp"

namespace oselm::core {

std::string_view design_name(Design design) noexcept {
  switch (design) {
    case Design::kElm:
      return "ELM";
    case Design::kOsElm:
      return "OS-ELM";
    case Design::kOsElmL2:
      return "OS-ELM-L2";
    case Design::kOsElmLipschitz:
      return "OS-ELM-Lipschitz";
    case Design::kOsElmL2Lipschitz:
      return "OS-ELM-L2-Lipschitz";
    case Design::kDqn:
      return "DQN";
    case Design::kFpga:
      return "FPGA";
  }
  return "unknown";
}

Design design_from_name(std::string_view name) {
  for (const Design d : all_designs()) {
    if (design_name(d) == name) return d;
  }
  throw std::invalid_argument("design_from_name: unknown design '" +
                              std::string(name) + "'");
}

std::vector<Design> all_designs() {
  return {Design::kElm,           Design::kOsElm,
          Design::kOsElmL2,       Design::kOsElmLipschitz,
          Design::kOsElmL2Lipschitz, Design::kDqn,
          Design::kFpga};
}

std::vector<Design> software_designs() {
  return {Design::kElm,     Design::kOsElm,
          Design::kOsElmL2, Design::kOsElmLipschitz,
          Design::kOsElmL2Lipschitz, Design::kDqn};
}

double AgentConfig::resolved_delta() const noexcept {
  if (l2_delta >= 0.0) return l2_delta;
  switch (design) {
    case Design::kOsElmL2:
      return 1.0;  // §4.1: delta = 1 for OS-ELM-L2
    case Design::kOsElmL2Lipschitz:
    case Design::kFpga:
      return 0.5;  // §4.1: delta = 0.5 for OS-ELM-L2-Lipschitz
    default:
      return 0.0;
  }
}

std::string AgentConfig::resolved_backend_id() const {
  if (!backend_id.empty()) return backend_id;
  switch (design) {
    case Design::kOsElm:
    case Design::kOsElmL2:
    case Design::kOsElmLipschitz:
    case Design::kOsElmL2Lipschitz:
      return "software";
    case Design::kFpga:
      return "fpga-q20";
    default:
      return {};  // ELM and DQN carry their own arithmetic
  }
}

namespace {

rl::AgentPtr make_oselm_agent(const AgentConfig& config,
                              bool spectral_normalize,
                              std::string_view display_name) {
  const rl::SimplifiedOutputModel model(config.state_dim,
                                        config.action_count);
  rl::BackendConfig backend_config;
  backend_config.input_dim = model.input_dim();
  backend_config.hidden_units = config.hidden_units;
  backend_config.l2_delta = config.resolved_delta();
  backend_config.spectral_normalize = spectral_normalize;
  backend_config.seed = config.seed * 2654435761ULL + 1;

  rl::OsElmQBackendPtr backend =
      rl::make_backend(config.resolved_backend_id(), backend_config);

  rl::OsElmQAgentConfig agent_config;
  agent_config.gamma = config.gamma;
  agent_config.epsilon_greedy = config.epsilon_greedy;
  agent_config.update_probability = config.update_probability;
  agent_config.target_sync_interval = config.target_sync_interval;

  return std::make_unique<rl::OsElmQAgent>(std::move(backend), model,
                                           agent_config, config.seed,
                                           display_name);
}

}  // namespace

rl::AgentPtr make_agent(const AgentConfig& config) {
  if (config.hidden_units == 0) {
    throw std::invalid_argument("AgentConfig: hidden_units == 0");
  }
  if (!config.backend_id.empty() &&
      (config.design == Design::kElm || config.design == Design::kDqn)) {
    // ELM and DQN carry their own arithmetic: a requested Q backend would
    // be silently ignored, so reject the misconfiguration loudly.
    throw std::invalid_argument(
        "AgentConfig: backend_id '" + config.backend_id +
        "' is meaningless for design " +
        std::string(design_name(config.design)));
  }
  switch (config.design) {
    case Design::kElm: {
      const rl::SimplifiedOutputModel model(config.state_dim,
                                            config.action_count);
      rl::ElmQAgentConfig elm_config;
      elm_config.hidden_units = config.hidden_units;
      elm_config.gamma = config.gamma;
      elm_config.epsilon_greedy = config.epsilon_greedy;
      return std::make_unique<rl::ElmQAgent>(model, elm_config, config.seed);
    }
    case Design::kOsElm:
    case Design::kOsElmL2:
      return make_oselm_agent(config, /*spectral_normalize=*/false,
                              design_name(config.design));
    case Design::kOsElmLipschitz:
    case Design::kOsElmL2Lipschitz:
      return make_oselm_agent(config, /*spectral_normalize=*/true,
                              design_name(config.design));
    case Design::kDqn: {
      rl::DqnAgentConfig dqn_config;
      dqn_config.state_dim = config.state_dim;
      dqn_config.action_count = config.action_count;
      dqn_config.hidden_units = config.hidden_units;
      dqn_config.gamma = config.gamma;
      dqn_config.epsilon_greedy = config.epsilon_greedy;
      dqn_config.target_sync_interval = config.target_sync_interval;
      return std::make_unique<rl::DqnAgent>(dqn_config, config.seed);
    }
    case Design::kFpga:
      return make_oselm_agent(config, /*spectral_normalize=*/true, "FPGA");
  }
  throw std::invalid_argument("make_agent: unknown design");
}

}  // namespace oselm::core
