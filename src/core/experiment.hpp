// Experiment driver: one design x environment run, and multi-trial
// averaging with per-trial seeding (the paper averages Fig. 5 over 100
// trials for software designs, 20 for the FPGA).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/design.hpp"
#include "rl/trainer.hpp"

namespace oselm::core {

struct RunSpec {
  AgentConfig agent;
  rl::TrainerConfig trainer;
  std::string env_id = "ShapedCartPole-v0";
  std::uint64_t env_seed = 7;
};

/// Runs a single trial to completion (solved / 50k-episode cutoff).
rl::TrainResult run_experiment(const RunSpec& spec);

/// Aggregate over independent trials of one design.
struct TrialSummary {
  std::size_t trials = 0;
  std::size_t solved_count = 0;
  double mean_time_to_complete = 0.0;  ///< seconds, solved trials only
  double mean_episodes_to_complete = 0.0;
  util::OpBreakdown mean_breakdown;    ///< averaged over solved trials
  std::vector<double> per_trial_seconds;
  std::vector<bool> per_trial_solved;
};

/// Runs `trials` independent seeds (agent seed = base + i, env seed
/// likewise) across `threads` workers (0 = hardware concurrency).
/// Time-to-complete per trial is the sum of the op-breakdown categories
/// excluding environment time, matching the paper's bar composition.
TrialSummary run_trials(const RunSpec& base, std::size_t trials,
                        std::size_t threads = 0);

}  // namespace oselm::core
