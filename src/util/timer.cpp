#include "util/timer.hpp"

// Header-only today; the translation unit anchors the target and keeps an
// insertion point for platform-specific clocks (e.g. CLOCK_MONOTONIC_RAW).
