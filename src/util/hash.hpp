// FNV-1a 64-bit hashing.
//
// Tiny, allocation-free, and platform-stable: the same bytes hash to the
// same value on every build and architecture. Two subsystems rely on that
// stability as a CONTRACT, not a convenience: rl::RouterQServer maps
// session affinity keys to replicas with it (placement must not change
// across builds), and scenario::ScenarioSchedule digests its expanded
// fault/churn timeline with it (two runs of the same spec + seed must
// report the same digest so reproducibility is checkable from the verdict
// JSON alone).
#pragma once

#include <cstdint>
#include <string_view>

namespace oselm::util {

inline constexpr std::uint64_t kFnv1aOffsetBasis = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnv1aPrime = 0x100000001b3ull;

/// FNV-1a over `data`, optionally chained from a previous hash (pass the
/// prior result as `basis` to fold multiple fields into one digest).
[[nodiscard]] constexpr std::uint64_t fnv1a(
    std::string_view data,
    std::uint64_t basis = kFnv1aOffsetBasis) noexcept {
  std::uint64_t hash = basis;
  for (const char c : data) {
    hash ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    hash *= kFnv1aPrime;
  }
  return hash;
}

/// Folds a 64-bit value into an FNV-1a chain byte by byte (little-endian
/// byte order, fixed by contract — digests must not depend on the host).
[[nodiscard]] constexpr std::uint64_t fnv1a_u64(
    std::uint64_t value, std::uint64_t basis = kFnv1aOffsetBasis) noexcept {
  std::uint64_t hash = basis;
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (8 * byte)) & 0xffu;
    hash *= kFnv1aPrime;
  }
  return hash;
}

}  // namespace oselm::util
