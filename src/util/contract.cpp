#include "util/contract.hpp"

#include <cstdio>
#include <cstdlib>

namespace oselm::util {
namespace contract_detail {

void fail(const char* file, int line, const char* expr,
          const std::string& detail) noexcept {
  // stderr + abort (not an exception): a tripped contract means the
  // process state already violates an invariant — unwinding through the
  // threaded serving stack from here would only corrupt it further. The
  // message shape is what the death tests match on.
  std::fprintf(stderr, "%s:%d: contract failed: %s%s\n", file, line, expr,
               detail.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace contract_detail

void ThreadAffinity::fail_affinity(const char* what,
                                   std::thread::id owner) noexcept {
  std::ostringstream os;
  os << " (owner thread " << owner << ", calling thread "
     << std::this_thread::get_id() << ")";
  contract_detail::fail("ThreadAffinity", 0,
                        what != nullptr ? what : "thread-affinity violation",
                        os.str());
}

}  // namespace oselm::util
