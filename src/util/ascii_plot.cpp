#include "util/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace oselm::util {

namespace {

/// Bucket-averages `values` down to `width` points (or pads by repetition
/// when shorter); keeps curve shape at terminal resolution.
std::vector<double> resample(const std::vector<double>& values,
                             std::size_t width) {
  std::vector<double> out(width, 0.0);
  if (values.empty() || width == 0) return out;
  const double stride =
      static_cast<double>(values.size()) / static_cast<double>(width);
  for (std::size_t i = 0; i < width; ++i) {
    const auto lo = static_cast<std::size_t>(
        std::floor(static_cast<double>(i) * stride));
    auto hi = static_cast<std::size_t>(
        std::floor(static_cast<double>(i + 1) * stride));
    hi = std::max(hi, lo + 1);
    hi = std::min(hi, values.size());
    double sum = 0.0;
    for (std::size_t j = lo; j < hi && j < values.size(); ++j) sum += values[j];
    const auto n = static_cast<double>(std::max<std::size_t>(hi - lo, 1));
    out[i] = sum / n;
  }
  return out;
}

std::string format_tick(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%8.1f", v);
  return buf;
}

}  // namespace

std::string render_ascii_chart(const std::vector<PlotSeries>& series,
                               const PlotOptions& options) {
  const std::size_t width = std::max<std::size_t>(options.width, 10);
  const std::size_t height = std::max<std::size_t>(options.height, 4);

  double y_min = std::numeric_limits<double>::infinity();
  double y_max = -std::numeric_limits<double>::infinity();
  if (options.fixed_y_range) {
    y_min = options.y_min;
    y_max = options.y_max;
  } else {
    for (const auto& s : series) {
      for (const double v : s.values) {
        y_min = std::min(y_min, v);
        y_max = std::max(y_max, v);
      }
    }
    if (!std::isfinite(y_min) || !std::isfinite(y_max)) {
      y_min = 0.0;
      y_max = 1.0;
    }
    if (y_max - y_min < 1e-12) y_max = y_min + 1.0;
  }

  // canvas[row][col]; row 0 is the top.
  std::vector<std::string> canvas(height, std::string(width, ' '));
  std::size_t max_len = 0;
  for (const auto& s : series) max_len = std::max(max_len, s.values.size());

  for (const auto& s : series) {
    if (s.values.empty()) continue;
    const auto resampled = resample(s.values, width);
    for (std::size_t col = 0; col < width; ++col) {
      const double frac =
          std::clamp((resampled[col] - y_min) / (y_max - y_min), 0.0, 1.0);
      const auto row = static_cast<std::size_t>(
          std::lround((1.0 - frac) * static_cast<double>(height - 1)));
      canvas[row][col] = s.glyph;
    }
  }

  std::ostringstream out;
  if (!options.title.empty()) out << options.title << '\n';
  for (std::size_t row = 0; row < height; ++row) {
    const double frac =
        1.0 - static_cast<double>(row) / static_cast<double>(height - 1);
    const double tick = y_min + frac * (y_max - y_min);
    out << format_tick(tick) << " |" << canvas[row] << '\n';
  }
  out << std::string(9, ' ') << '+' << std::string(width, '-') << '\n';
  out << std::string(9, ' ') << ' ' << options.x_label << " (0.."
      << max_len << ")\n";
  out << "  legend:";
  for (const auto& s : series) out << "  [" << s.glyph << "] " << s.label;
  out << '\n';
  return out.str();
}

std::string render_bar_chart(const std::vector<Bar>& bars, std::size_t width,
                             const std::string& unit) {
  double max_total = 0.0;
  for (const auto& bar : bars) {
    double total = 0.0;
    for (const auto& seg : bar.segments) total += seg.value;
    max_total = std::max(max_total, total);
  }
  if (max_total <= 0.0) max_total = 1.0;

  std::size_t label_width = 0;
  for (const auto& bar : bars) {
    label_width = std::max(label_width, bar.label.size());
  }

  // A stable glyph per segment index keeps segments distinguishable.
  static constexpr char kGlyphs[] = {'#', '=', '+', ':', '%', 'o', '.', '~'};

  std::ostringstream out;
  for (const auto& bar : bars) {
    double total = 0.0;
    out << "  " << bar.label
        << std::string(label_width - bar.label.size() + 1, ' ') << '|';
    std::size_t used = 0;
    for (std::size_t i = 0; i < bar.segments.size(); ++i) {
      const auto& seg = bar.segments[i];
      total += seg.value;
      const auto cells = static_cast<std::size_t>(
          std::lround(seg.value / max_total * static_cast<double>(width)));
      out << std::string(cells, kGlyphs[i % sizeof kGlyphs]);
      used += cells;
    }
    if (used < width) out << std::string(width - used, ' ');
    char buf[64];
    std::snprintf(buf, sizeof buf, "| %10.4f %s", total, unit.c_str());
    out << buf << '\n';
  }
  if (!bars.empty()) {
    out << "  legend:";
    for (std::size_t i = 0; i < bars.front().segments.size(); ++i) {
      out << "  [" << kGlyphs[i % sizeof kGlyphs] << "] "
          << bars.front().segments[i].label;
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace oselm::util
