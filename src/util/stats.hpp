// Streaming statistics and moving averages for training-curve reporting.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

namespace oselm::util {

/// Welford-style running mean/variance with min/max tracking.
class RunningStat {
 public:
  void add(double value) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Fixed-window moving average; the paper's darker training-curve lines
/// use a 100-episode window (§4.3).
class MovingAverage {
 public:
  explicit MovingAverage(std::size_t window);

  void add(double value);
  [[nodiscard]] double value() const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }
  /// True once the window is fully populated.
  [[nodiscard]] bool full() const noexcept {
    return buffer_.size() == window_;
  }
  void reset() noexcept;

 private:
  std::size_t window_;
  std::deque<double> buffer_;
  double sum_ = 0.0;
};

/// Moving average of a whole series (NaN-free: partial windows average
/// whatever is available, matching matplotlib-style rolling plots).
std::vector<double> moving_average_series(const std::vector<double>& series,
                                          std::size_t window);

/// Percentile by linear interpolation on a copy of the data (q in [0,1]).
double percentile(std::vector<double> values, double q);

}  // namespace oselm::util
