#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace oselm::util {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
  // An all-zero state would be a fixed point of xoshiro; SplitMix64 cannot
  // produce four zero outputs from any seed, but guard anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // Top 53 bits -> [0, 1) with full double mantissa resolution.
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  if (n == 0) return 0;
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 is kept away from zero so log() is finite.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

void Rng::fill_uniform(std::vector<double>& out, double lo,
                       double hi) noexcept {
  for (auto& v : out) v = uniform(lo, hi);
}

Rng Rng::split() noexcept {
  // Seed a child from two raw draws; streams are statistically independent.
  const std::uint64_t a = (*this)();
  const std::uint64_t b = (*this)();
  return Rng(a ^ rotl(b, 32));
}

void Rng::jump() noexcept {
  static constexpr std::array<std::uint64_t, 4> kJump = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> acc{};
  for (const std::uint64_t word : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if (word & (1ULL << bit)) {
        for (std::size_t i = 0; i < 4; ++i) acc[i] ^= state_[i];
      }
      (*this)();
    }
  }
  state_ = acc;
}

}  // namespace oselm::util
