// Per-category time ledger — the single place operation time is charged.
//
// PR 3 redesign: backends no longer *return* "seconds to charge" doubles
// that every caller must remember to thread into an OpBreakdown. Instead a
// TimeLedger is injected at backend construction and every predicting /
// training call charges it directly; agents read the finished OpBreakdown
// off the ledger. This mirrors the paper's Fig. 3 split between *what is
// computed* (the backend's arithmetic) and *where the time goes* (the
// ledger's categories), and lets several sessions share one backend — and
// therefore one time account — in the serving front-end (rl/serving.hpp).
//
// Prediction charges are routed by context: by default they land on
// kPredictInit/kPredictSeq depending on whether the backend has run its
// initial training, but a PredictScope can retarget them — the TD-target
// evaluations inside the agent's init_train/seq_train paths charge
// kInitTrain/kSeqTrain, exactly like the historical explicit `charge_to`
// arguments did.
// Thread contract: a TimeLedger is a SINGLE-WRITER structure — exactly one
// thread charges it at a time (an agent's caller thread, an AsyncQServer's
// batch thread). Ownership transfers only at quiescent points, marked by
// release_writer() (e.g. AsyncQServer::run_exclusive running inline after
// stop()). Debug builds enforce this with a util::ThreadAffinity that
// binds on the first charge; sharing one ledger across concurrently
// charging threads is a data race AND a tripped contract.
#pragma once

#include <memory>

#include "util/contract.hpp"
#include "util/op_accounting.hpp"

namespace oselm::util {

class TimeLedger {
 public:
  /// Adds `seconds` (and `invocations` op counts) to `category`.
  void charge(OpCategory category, double seconds,
              std::uint64_t invocations = 1) noexcept {
    writer_.assert_or_bind("TimeLedger charged off its writer thread");
    breakdown_.add(category, seconds, invocations);
  }

  /// Charges a prediction: to the active PredictScope's category when one
  /// is set, otherwise kPredictSeq/kPredictInit selected by `initialized`
  /// (the caller-side charge = initialized ? seq : init rule the agents
  /// used before the redesign).
  void charge_predict(bool initialized, double seconds,
                      std::uint64_t invocations = 1) noexcept {
    writer_.assert_or_bind("TimeLedger charged off its writer thread");
    breakdown_.add(predict_category(initialized), seconds, invocations);
  }

  /// Marks a legal writer handoff: the next charge from ANY thread
  /// re-binds the Debug ownership guard. Call only at quiescent points —
  /// when the previous writer provably issues no further charges (batch
  /// thread joined, agent destroyed). No-op in Release.
  void release_writer() noexcept { writer_.release(); }

  /// Folds another account's accumulated time and counts into this one.
  /// A write like any charge, so the single-writer contract applies; the
  /// source breakdown must itself be quiescent (its writer stopped).
  /// This is how RouterQServer settles per-replica accounts into a
  /// user-shared ledger once the fleet stops.
  void merge(const OpBreakdown& other) noexcept {
    writer_.assert_or_bind("TimeLedger merged off its writer thread");
    breakdown_ += other;
  }

  /// Where a prediction would be charged right now.
  [[nodiscard]] OpCategory predict_category(bool initialized) const noexcept {
    if (predict_override_ != OpCategory::kCount) return predict_override_;
    return initialized ? OpCategory::kPredictSeq : OpCategory::kPredictInit;
  }

  [[nodiscard]] const OpBreakdown& breakdown() const noexcept {
    return breakdown_;
  }

  /// Forgets all accumulated time and counts (not the PredictScope
  /// state). An epoch boundary: the Debug writer guard resets with the
  /// account, so a bench that reuses one ledger across measurement phases
  /// may charge the next phase from a different thread.
  void reset() noexcept {
    breakdown_ = OpBreakdown{};
    writer_.release();
  }

  /// RAII override: predictions charged while the scope is alive land on
  /// `category` regardless of backend lifecycle. Nestable; the previous
  /// routing is restored on destruction.
  class PredictScope {
   public:
    PredictScope(TimeLedger& ledger, OpCategory category) noexcept
        : ledger_(ledger), previous_(ledger.predict_override_) {
      // Scope routing state is covered by the same single-writer
      // contract as the charges it redirects.
      ledger_.writer_.assert_or_bind(
          "TimeLedger::PredictScope opened off the writer thread");
      ledger_.predict_override_ = category;
    }
    PredictScope(const PredictScope&) = delete;
    PredictScope& operator=(const PredictScope&) = delete;
    ~PredictScope() { ledger_.predict_override_ = previous_; }

   private:
    TimeLedger& ledger_;
    OpCategory previous_;
  };

 private:
  OpBreakdown breakdown_;
  /// kCount doubles as "no override active".
  OpCategory predict_override_ = OpCategory::kCount;
  /// Debug single-writer guard (inert in Release). PredictScope state is
  /// covered by the same contract: scopes live on the writer thread.
  ThreadAffinity writer_;
};

/// Ledgers are shared between a backend and everything accounting against
/// it (agents, servers, benches), hence the shared_ptr alias.
using TimeLedgerPtr = std::shared_ptr<TimeLedger>;

}  // namespace oselm::util
