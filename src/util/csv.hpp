// Minimal CSV writer for experiment artifacts (one file per table/figure).
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace oselm::util {

/// Streams rows to a CSV file with RFC-4180-style quoting.
class CsvWriter {
 public:
  /// Opens (truncates) `path`; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  void write_row(std::initializer_list<std::string_view> cells);
  void write_row(const std::vector<std::string>& cells);

  /// Convenience: formats arithmetic values with max precision.
  template <typename... Ts>
  void write_values(const Ts&... values) {
    std::vector<std::string> cells;
    cells.reserve(sizeof...(values));
    (cells.push_back(format_cell(values)), ...);
    write_row(cells);
  }

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  static std::string format_cell(const std::string& s) { return s; }
  static std::string format_cell(const char* s) { return s; }
  static std::string format_cell(std::string_view s) {
    return std::string(s);
  }
  static std::string format_cell(double v);
  static std::string format_cell(float v) {
    return format_cell(static_cast<double>(v));
  }
  template <typename T>
  static std::string format_cell(T v)
    requires std::is_integral_v<T>
  {
    return std::to_string(v);
  }

  static std::string escape(std::string_view cell);

  std::string path_;
  std::ofstream out_;
};

}  // namespace oselm::util
