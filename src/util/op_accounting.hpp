// Per-operation time accounting for the paper's Figure 5/6 breakdown.
//
// The paper decomposes each design's time-to-complete into the categories
// below (§4.4). Software designs accumulate measured wall-clock seconds;
// the FPGA design accumulates *modeled* programmable-logic seconds for
// predict/seq_train (cycle count / 125 MHz) and measured host seconds for
// init_train, exactly mirroring the hardware/software split of Fig. 3.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace oselm::util {

/// Operation categories reported in the paper's execution-time breakdown.
enum class OpCategory : std::size_t {
  kSeqTrain = 0,     ///< OS-ELM sequential training (Eq. 6)
  kPredictSeq,       ///< prediction after initial training completed
  kInitTrain,        ///< ELM/OS-ELM initial training (Eq. 7/8)
  kPredictInit,      ///< prediction before initial training completed
  kTrainDqn,         ///< DQN backprop + Adam step
  kPredict1,         ///< DQN batch-1 prediction (action selection)
  kPredict32,        ///< DQN batch-32 prediction (target computation)
  kEnvironment,      ///< environment stepping (not in the paper's bars)
  kCount
};

constexpr std::size_t kOpCategoryCount =
    static_cast<std::size_t>(OpCategory::kCount);

/// Human-readable name matching the paper's legend.
std::string_view op_category_name(OpCategory category) noexcept;

/// Accumulates seconds and invocation counts per operation category.
/// Counts let the Fig. 5 "board mode" convert instrumented op counts into
/// modeled PYNQ-Z1 seconds (see hw::SoftwarePlatformModel).
class OpBreakdown {
 public:
  void add(OpCategory category, double seconds,
           std::uint64_t invocations = 1) noexcept {
    seconds_[static_cast<std::size_t>(category)] += seconds;
    invocations_[static_cast<std::size_t>(category)] += invocations;
  }

  [[nodiscard]] double get(OpCategory category) const noexcept {
    return seconds_[static_cast<std::size_t>(category)];
  }

  [[nodiscard]] std::uint64_t invocations(OpCategory category) const noexcept {
    return invocations_[static_cast<std::size_t>(category)];
  }

  /// Sum over every category (== time-to-complete for the design).
  [[nodiscard]] double total() const noexcept;

  /// Sum excluding environment time (the paper's bars exclude env cost).
  [[nodiscard]] double total_excluding_env() const noexcept;

  OpBreakdown& operator+=(const OpBreakdown& other) noexcept;

  /// Element-wise division by a trial count, for averaging.
  [[nodiscard]] OpBreakdown averaged_over(std::size_t trials) const noexcept;

 private:
  std::array<double, kOpCategoryCount> seconds_{};
  std::array<std::uint64_t, kOpCategoryCount> invocations_{};
};

}  // namespace oselm::util
