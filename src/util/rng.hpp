// Deterministic pseudo-random number generation.
//
// All stochastic components in this repository (weight initialization,
// epsilon-greedy exploration, environment reset noise, replay sampling)
// draw from util::Rng so that a single 64-bit seed reproduces an entire
// experiment bit-for-bit, independent of the standard library's
// distribution implementations.
//
// The generator is xoshiro256++ (Blackman & Vigna), seeded through
// SplitMix64. Both are public-domain algorithms reimplemented here.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace oselm::util {

/// SplitMix64 step: used for seeding and as a cheap stateless mixer.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256++ pseudo-random generator with derived distributions.
///
/// Satisfies UniformRandomBitGenerator so it can also be handed to
/// standard algorithms, but the member distributions below are preferred
/// because their output is platform-stable.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four-word state via SplitMix64 from a single seed.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  /// Next raw 64 random bits.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1) with 53 bits of entropy.
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n) for n > 0 (unbiased via rejection).
  std::uint64_t uniform_index(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal via Box–Muller (cached second variate).
  double normal() noexcept;

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Bernoulli trial: true with probability p.
  bool bernoulli(double p) noexcept;

  /// Fills `out` with uniform values in [lo, hi).
  void fill_uniform(std::vector<double>& out, double lo, double hi) noexcept;

  /// Derives an independent child generator (for parallel trials).
  Rng split() noexcept;

  /// 2^128 jump, advancing the stream as if by 2^128 draws.
  void jump() noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace oselm::util
