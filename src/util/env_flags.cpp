#include "util/env_flags.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace oselm::util {

std::int64_t env_int(const std::string& name, std::int64_t fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0' || parsed < 0) return fallback;
  return static_cast<std::int64_t>(parsed);
}

double env_double(const std::string& name, double fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(raw, &end);
  if (end == raw || *end != '\0' || parsed < 0.0) return fallback;
  return parsed;
}

bool env_bool(const std::string& name, bool fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || *raw == '\0') return fallback;
  std::string v(raw);
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  return fallback;
}

}  // namespace oselm::util
