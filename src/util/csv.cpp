#include "util/csv.hpp"

#include <sstream>
#include <stdexcept>

namespace oselm::util {

CsvWriter::CsvWriter(const std::string& path) : path_(path), out_(path) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
}

void CsvWriter::write_row(std::initializer_list<std::string_view> cells) {
  bool first = true;
  for (const auto cell : cells) {
    if (!first) out_ << ',';
    out_ << escape(cell);
    first = false;
  }
  out_ << '\n';
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  bool first = true;
  for (const auto& cell : cells) {
    if (!first) out_ << ',';
    out_ << escape(cell);
    first = false;
  }
  out_ << '\n';
}

std::string CsvWriter::format_cell(double v) {
  std::ostringstream oss;
  oss.precision(17);
  oss << v;
  return oss.str();
}

std::string CsvWriter::escape(std::string_view cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n") != std::string_view::npos;
  if (!needs_quotes) return std::string(cell);
  std::string quoted = "\"";
  for (const char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace oselm::util
