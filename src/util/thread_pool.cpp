#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>

#include "util/contract.hpp"

namespace oselm::util {

namespace {
#if OSELM_CONTRACTS_ENABLED
/// Which pool (if any) owns the calling thread — set for the lifetime of
/// worker_loop(). Purely a Debug contract aid; Release builds carry no
/// per-thread state.
thread_local const ThreadPool* tls_worker_pool = nullptr;
#endif
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    const std::scoped_lock lock(mutex_);
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

bool ThreadPool::on_worker_thread() const noexcept {
#if OSELM_CONTRACTS_ENABLED
  return tls_worker_pool == this;
#else
  return false;
#endif
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  // Re-entrant parallel_for deadlocks: this frame would block on futures
  // only its own (occupied) lane could run. See the header contract.
  OSELM_DCHECK(!on_worker_thread());
  if (count == 0) return;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::vector<std::future<void>> futures;
  const std::size_t lanes = std::min(count, workers_.size());
  futures.reserve(lanes);
  // Drain EVERY spawned lane before leaving this scope, no matter how it
  // is left — the lane lambdas capture this frame's locals by reference,
  // so returning (or throwing, including a submit() allocation failure
  // mid-spawn) while a lane still runs would leave it reading freed
  // stack memory. The first exception wins and is rethrown only after
  // all lanes finished.
  std::exception_ptr first;
  try {
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      futures.push_back(submit([&] {
        for (;;) {
          // Once any lane threw, stop claiming iterations: the remaining
          // work would be discarded with the exception anyway.
          if (failed.load(std::memory_order_relaxed)) return;
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= count) return;
          try {
            body(i);
          } catch (...) {
            failed.store(true, std::memory_order_relaxed);
            throw;
          }
        }
      }));
    }
  } catch (...) {
    failed.store(true, std::memory_order_relaxed);
    first = std::current_exception();
  }
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

void ThreadPool::worker_loop() {
#if OSELM_CONTRACTS_ENABLED
  tls_worker_pool = this;
#endif
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace oselm::util
