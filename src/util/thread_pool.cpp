#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace oselm::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    const std::scoped_lock lock(mutex_);
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::vector<std::future<void>> futures;
  const std::size_t lanes = std::min(count, workers_.size());
  futures.reserve(lanes);
  // Drain EVERY spawned lane before leaving this scope, no matter how it
  // is left — the lane lambdas capture this frame's locals by reference,
  // so returning (or throwing, including a submit() allocation failure
  // mid-spawn) while a lane still runs would leave it reading freed
  // stack memory. The first exception wins and is rethrown only after
  // all lanes finished.
  std::exception_ptr first;
  try {
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      futures.push_back(submit([&] {
        for (;;) {
          // Once any lane threw, stop claiming iterations: the remaining
          // work would be discarded with the exception anyway.
          if (failed.load(std::memory_order_relaxed)) return;
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= count) return;
          try {
            body(i);
          } catch (...) {
            failed.store(true, std::memory_order_relaxed);
            throw;
          }
        }
      }));
    }
  } catch (...) {
    failed.store(true, std::memory_order_relaxed);
    first = std::current_exception();
  }
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace oselm::util
