// Environment-variable overrides for bench fidelity knobs, e.g.
// OSELM_TRIALS=100 ./bench_fig5_time_to_complete
#pragma once

#include <cstdint>
#include <string>

namespace oselm::util {

/// Reads an integer environment variable; returns `fallback` when unset or
/// malformed. Negative values are rejected (fallback is returned).
std::int64_t env_int(const std::string& name, std::int64_t fallback);

/// Reads a floating-point environment variable with the same fallback rule.
double env_double(const std::string& name, double fallback);

/// Reads a boolean flag ("1"/"true"/"yes" case-insensitive => true).
bool env_bool(const std::string& name, bool fallback);

}  // namespace oselm::util
