// Terminal line charts so the figure benches can render the paper's
// training curves (Fig. 4) without a plotting dependency.
#pragma once

#include <string>
#include <vector>

namespace oselm::util {

/// One named series to render.
struct PlotSeries {
  std::string label;
  std::vector<double> values;
  char glyph = '*';
};

struct PlotOptions {
  std::size_t width = 100;   ///< chart columns (x resolution)
  std::size_t height = 20;   ///< chart rows (y resolution)
  std::string title;
  std::string x_label = "x";
  std::string y_label = "y";
  /// When set, y-axis spans [y_min, y_max] instead of the data range.
  bool fixed_y_range = false;
  double y_min = 0.0;
  double y_max = 1.0;
};

/// Renders series into a multi-line ASCII chart. Series longer than the
/// chart width are downsampled by bucket-averaging.
std::string render_ascii_chart(const std::vector<PlotSeries>& series,
                               const PlotOptions& options);

/// Renders a horizontal bar chart (used for the Fig. 5/6 stacked bars).
struct BarSegment {
  std::string label;
  double value = 0.0;
};
struct Bar {
  std::string label;
  std::vector<BarSegment> segments;
};
std::string render_bar_chart(const std::vector<Bar>& bars,
                             std::size_t width = 70,
                             const std::string& unit = "s");

}  // namespace oselm::util
