// Minimal binary serialization for model checkpoints.
//
// Deployment need: the PYNQ-Z1's CPU part persists trained weights
// (alpha, beta, P) across power cycles and writes them back into the PL's
// BRAMs on boot. The format is explicit little-endian with a magic tag
// and version byte so files are portable and refuse to load mismatched
// layouts.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace oselm::util {

/// Stream writer with explicit little-endian encoding.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream& out) : out_(out) {}

  void write_u8(std::uint8_t v);
  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_f64(double v);
  void write_string(const std::string& s);
  void write_vector(const std::vector<double>& v);
  void write_matrix(const linalg::MatD& m);

  [[nodiscard]] bool ok() const { return static_cast<bool>(out_); }

 private:
  std::ostream& out_;
};

/// Stream reader; throws std::runtime_error on truncated/corrupt input.
class BinaryReader {
 public:
  explicit BinaryReader(std::istream& in) : in_(in) {}

  std::uint8_t read_u8();
  std::uint32_t read_u32();
  std::uint64_t read_u64();
  double read_f64();
  std::string read_string();
  std::vector<double> read_vector();
  linalg::MatD read_matrix();

 private:
  void read_bytes(void* dst, std::size_t count);
  std::istream& in_;
};

/// Writes/validates a 4-byte magic tag plus a format version byte.
void write_header(BinaryWriter& writer, const char magic[4],
                  std::uint8_t version);
/// Throws std::runtime_error when magic or version mismatch.
void read_header(BinaryReader& reader, const char magic[4],
                 std::uint8_t expected_version);

}  // namespace oselm::util
