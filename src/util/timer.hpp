// Wall-clock timing helpers used by the execution-time experiments (Fig. 5/6).
#pragma once

#include <chrono>

namespace oselm::util {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() noexcept { reset(); }

  void reset() noexcept { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Adds the scope's duration to an accumulator on destruction.
class ScopedAccumulator {
 public:
  explicit ScopedAccumulator(double& sink) noexcept : sink_(sink) {}
  ScopedAccumulator(const ScopedAccumulator&) = delete;
  ScopedAccumulator& operator=(const ScopedAccumulator&) = delete;
  ~ScopedAccumulator() { sink_ += timer_.seconds(); }

 private:
  double& sink_;
  WallTimer timer_;
};

}  // namespace oselm::util
