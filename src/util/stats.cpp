#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace oselm::util {

void RunningStat::add(double value) noexcept {
  ++count_;
  sum_ += value;
  if (count_ == 1) {
    mean_ = value;
    min_ = value;
    max_ = value;
    m2_ = 0.0;
    return;
  }
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

double RunningStat::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

MovingAverage::MovingAverage(std::size_t window) : window_(window) {
  if (window == 0) throw std::invalid_argument("MovingAverage: window == 0");
}

void MovingAverage::add(double value) {
  buffer_.push_back(value);
  sum_ += value;
  if (buffer_.size() > window_) {
    sum_ -= buffer_.front();
    buffer_.pop_front();
  }
}

double MovingAverage::value() const noexcept {
  if (buffer_.empty()) return 0.0;
  return sum_ / static_cast<double>(buffer_.size());
}

void MovingAverage::reset() noexcept {
  buffer_.clear();
  sum_ = 0.0;
}

std::vector<double> moving_average_series(const std::vector<double>& series,
                                          std::size_t window) {
  std::vector<double> out;
  out.reserve(series.size());
  MovingAverage ma(window == 0 ? 1 : window);
  for (const double v : series) {
    ma.add(v);
    out.push_back(ma.value());
  }
  return out;
}

double percentile(std::vector<double> values, double q) {
  if (values.empty()) throw std::invalid_argument("percentile: empty input");
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace oselm::util
