#include "util/op_accounting.hpp"

namespace oselm::util {

std::string_view op_category_name(OpCategory category) noexcept {
  switch (category) {
    case OpCategory::kSeqTrain:
      return "seq_train";
    case OpCategory::kPredictSeq:
      return "predict_seq";
    case OpCategory::kInitTrain:
      return "init_train";
    case OpCategory::kPredictInit:
      return "predict_init";
    case OpCategory::kTrainDqn:
      return "train_DQN";
    case OpCategory::kPredict1:
      return "predict_1";
    case OpCategory::kPredict32:
      return "predict_32";
    case OpCategory::kEnvironment:
      return "environment";
    case OpCategory::kCount:
      break;
  }
  return "unknown";
}

double OpBreakdown::total() const noexcept {
  double sum = 0.0;
  for (const double s : seconds_) sum += s;
  return sum;
}

double OpBreakdown::total_excluding_env() const noexcept {
  return total() - get(OpCategory::kEnvironment);
}

OpBreakdown& OpBreakdown::operator+=(const OpBreakdown& other) noexcept {
  for (std::size_t i = 0; i < kOpCategoryCount; ++i) {
    seconds_[i] += other.seconds_[i];
    invocations_[i] += other.invocations_[i];
  }
  return *this;
}

OpBreakdown OpBreakdown::averaged_over(std::size_t trials) const noexcept {
  OpBreakdown out;
  if (trials == 0) return out;
  for (std::size_t i = 0; i < kOpCategoryCount; ++i) {
    out.seconds_[i] = seconds_[i] / static_cast<double>(trials);
    out.invocations_[i] = invocations_[i] / trials;
  }
  return out;
}

}  // namespace oselm::util
