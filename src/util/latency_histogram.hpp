// Log-bucketed latency/size histogram for serving telemetry.
//
// The async serving engine (rl/async_server.hpp) needs cheap streaming
// quantiles — p50/p95/p99 step latency and the achieved coalesced batch
// size — without storing every sample. Samples land in quarter-octave
// buckets (bounds 2^(k/4), ~19% relative width), so record() is a couple
// of arithmetic ops, merge() is a bucket-wise add, and quantiles are read
// back with bucket-bounded error. Exact count/sum/min/max ride along so
// the mean is precise even though quantiles are approximate.
//
// Not thread-safe: writers keep a private histogram and merge() under the
// owner's lock (each AsyncQServer session records into its own and the
// server folds them together), which keeps the hot path lock-free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <array>
#include <string>

namespace oselm::util {

class LatencyHistogram {
 public:
  /// Quarter-octave buckets spanning [1, 2^30) in the caller's unit
  /// (microseconds for latencies, rows for batch sizes); bucket k >= 1
  /// holds (2^((k-1)/4), 2^(k/4)], values <= 1 land in bucket 0, values
  /// beyond the range in the last bucket. NaN samples are rejected and
  /// counted via invalid_samples().
  static constexpr std::size_t kBuckets = 121;  // 4 per octave * 30 + 1

  void record(double value) noexcept;
  void merge(const LatencyHistogram& other) noexcept;
  void reset() noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  /// NaN samples rejected by record(): counted here, never entering
  /// count/min/mean/max or any bucket.
  [[nodiscard]] std::uint64_t invalid_samples() const noexcept {
    return invalid_samples_;
  }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double min() const noexcept { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const noexcept { return count_ == 0 ? 0.0 : max_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  /// Approximate quantile for q in [0, 1]: the geometric midpoint of the
  /// bucket holding the q-th sample, clamped to the exact [min, max].
  /// Error is bounded by the bucket width (<= ~19% relative).
  [[nodiscard]] double quantile(double q) const noexcept;

  /// {"count":N,"min":..,"mean":..,"p50":..,"p95":..,"p99":..,"max":..}
  /// — field names are unit-neutral; embed under a key that names the
  /// unit (e.g. "step_latency_us").
  [[nodiscard]] std::string to_json() const;

  /// Bucket index a value lands in (exposed for tests).
  [[nodiscard]] static std::size_t bucket_index(double value) noexcept;
  /// Lower bound of a bucket: 2^((k-1)/4) for k >= 1, 0 for bucket 0.
  [[nodiscard]] static double bucket_lower(std::size_t bucket) noexcept;

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t invalid_samples_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace oselm::util
