#include "util/serialization.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>

namespace oselm::util {

namespace {

static_assert(std::endian::native == std::endian::little ||
                  std::endian::native == std::endian::big,
              "mixed-endian platforms are not supported");

template <typename T>
T to_little(T v) {
  if constexpr (std::endian::native == std::endian::big) {
    T out;
    auto* src = reinterpret_cast<const std::uint8_t*>(&v);
    auto* dst = reinterpret_cast<std::uint8_t*>(&out);
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      dst[i] = src[sizeof(T) - 1 - i];
    }
    return out;
  }
  return v;
}

}  // namespace

void BinaryWriter::write_u8(std::uint8_t v) {
  out_.write(reinterpret_cast<const char*>(&v), 1);
}

void BinaryWriter::write_u32(std::uint32_t v) {
  const std::uint32_t le = to_little(v);
  out_.write(reinterpret_cast<const char*>(&le), sizeof le);
}

void BinaryWriter::write_u64(std::uint64_t v) {
  const std::uint64_t le = to_little(v);
  out_.write(reinterpret_cast<const char*>(&le), sizeof le);
}

void BinaryWriter::write_f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  write_u64(bits);
}

void BinaryWriter::write_string(const std::string& s) {
  write_u64(s.size());
  out_.write(s.data(), static_cast<std::streamsize>(s.size()));
}

void BinaryWriter::write_vector(const std::vector<double>& v) {
  write_u64(v.size());
  for (const double x : v) write_f64(x);
}

void BinaryWriter::write_matrix(const linalg::MatD& m) {
  write_u64(m.rows());
  write_u64(m.cols());
  for (std::size_t i = 0; i < m.size(); ++i) write_f64(m.data()[i]);
}

void BinaryReader::read_bytes(void* dst, std::size_t count) {
  in_.read(static_cast<char*>(dst), static_cast<std::streamsize>(count));
  if (static_cast<std::size_t>(in_.gcount()) != count) {
    throw std::runtime_error("BinaryReader: truncated input");
  }
}

std::uint8_t BinaryReader::read_u8() {
  std::uint8_t v;
  read_bytes(&v, 1);
  return v;
}

std::uint32_t BinaryReader::read_u32() {
  std::uint32_t v;
  read_bytes(&v, sizeof v);
  return to_little(v);
}

std::uint64_t BinaryReader::read_u64() {
  std::uint64_t v;
  read_bytes(&v, sizeof v);
  return to_little(v);
}

double BinaryReader::read_f64() {
  const std::uint64_t bits = read_u64();
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string BinaryReader::read_string() {
  const std::uint64_t size = read_u64();
  if (size > (1ULL << 32)) {
    throw std::runtime_error("BinaryReader: implausible string size");
  }
  std::string s(size, '\0');
  read_bytes(s.data(), size);
  return s;
}

std::vector<double> BinaryReader::read_vector() {
  const std::uint64_t size = read_u64();
  if (size > (1ULL << 32)) {
    throw std::runtime_error("BinaryReader: implausible vector size");
  }
  std::vector<double> v(size);
  for (auto& x : v) x = read_f64();
  return v;
}

linalg::MatD BinaryReader::read_matrix() {
  const std::uint64_t rows = read_u64();
  const std::uint64_t cols = read_u64();
  if (rows > (1ULL << 24) || cols > (1ULL << 24)) {
    throw std::runtime_error("BinaryReader: implausible matrix shape");
  }
  linalg::MatD m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = read_f64();
  return m;
}

void write_header(BinaryWriter& writer, const char magic[4],
                  std::uint8_t version) {
  for (int i = 0; i < 4; ++i) {
    writer.write_u8(static_cast<std::uint8_t>(magic[i]));
  }
  writer.write_u8(version);
}

void read_header(BinaryReader& reader, const char magic[4],
                 std::uint8_t expected_version) {
  for (int i = 0; i < 4; ++i) {
    if (reader.read_u8() != static_cast<std::uint8_t>(magic[i])) {
      throw std::runtime_error("serialization: magic mismatch");
    }
  }
  const std::uint8_t version = reader.read_u8();
  if (version != expected_version) {
    throw std::runtime_error("serialization: unsupported version " +
                             std::to_string(version));
  }
}

}  // namespace oselm::util
