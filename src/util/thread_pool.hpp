// Fixed-size thread pool with a blocking parallel_for, used to run
// independent RL trials concurrently when averaging Fig. 5 results.
//
// Matrix-level parallelism uses OpenMP inside linalg; this pool exists for
// the coarser trial-level fan-out where per-trial determinism (one Rng per
// trial) must be preserved regardless of scheduling order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace oselm::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (0 -> hardware_concurrency, at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task; the future resolves when it finishes.
  std::future<void> submit(std::function<void()> task);

  /// Runs body(i) for i in [0, count) across the pool and blocks until all
  /// iterations complete. A throwing iteration stops further iterations
  /// from being claimed; every lane is drained before the first exception
  /// is rethrown, so no worker outlives the call frame it captured.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace oselm::util
