// Fixed-size thread pool with a blocking parallel_for, used to run
// independent RL trials concurrently when averaging Fig. 5 results.
//
// Matrix-level parallelism uses OpenMP inside linalg; this pool exists for
// the coarser trial-level fan-out where per-trial determinism (one Rng per
// trial) must be preserved regardless of scheduling order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace oselm::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (0 -> hardware_concurrency, at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task; the future resolves when it finishes.
  std::future<void> submit(std::function<void()> task);

  /// Runs body(i) for i in [0, count) across the pool and blocks until all
  /// iterations complete. A throwing iteration stops further iterations
  /// from being claimed; every lane is drained before the first exception
  /// is rethrown, so no worker outlives the call frame it captured.
  ///
  /// Contract (Debug-checked): NEVER call from one of this pool's own
  /// worker lanes. The caller blocks on futures its own lane would have
  /// to execute — a size-1 pool deadlocks outright and larger pools
  /// deadlock whenever every other lane is busy. Nested parallelism must
  /// use a different pool (the kernel layer's internal P-update pool is
  /// exactly that).
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& body);

  /// True when the calling thread is one of THIS pool's worker lanes
  /// (always false in Release builds, where the tracking is compiled
  /// out). The re-entrancy contract and AsyncQServer's seam checks read
  /// it; not meant for scheduling decisions.
  [[nodiscard]] bool on_worker_thread() const noexcept;

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace oselm::util
