#include "util/latency_histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace oselm::util {

std::size_t LatencyHistogram::bucket_index(double value) noexcept {
  // Quarter-octave: bucket k (k >= 1) holds (2^((k-1)/4), 2^(k/4)];
  // bucket 0 holds everything <= 1, so exactly 1.0 belongs there.
  if (!(value > 1.0)) return 0;  // sub-unit samples, 1.0, and NaN
  const double raw = std::ceil(4.0 * std::log2(value));
  std::size_t k = std::min<std::size_t>(
      kBuckets - 1, static_cast<std::size_t>(std::max(raw, 1.0)));
  // log2/ceil can round across a bucket edge; bucket_lower (exp2) is the
  // authoritative bound, so nudge until (lower, upper] holds the value.
  while (k > 0 && value <= bucket_lower(k)) --k;
  while (k + 1 < kBuckets && value > bucket_lower(k + 1)) ++k;
  return k;
}

double LatencyHistogram::bucket_lower(std::size_t bucket) noexcept {
  if (bucket == 0) return 0.0;
  return std::exp2(static_cast<double>(bucket - 1) / 4.0);
}

void LatencyHistogram::record(double value) noexcept {
  // NaN never enters min/sum/max: a NaN FIRST sample would otherwise seed
  // min_/max_ and stick (std::min(NaN, v) keeps returning NaN), poisoning
  // to_json() forever. Invalid samples are counted separately instead.
  if (std::isnan(value)) {
    ++invalid_samples_;
    return;
  }
  ++buckets_[bucket_index(value)];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

void LatencyHistogram::merge(const LatencyHistogram& other) noexcept {
  invalid_samples_ += other.invalid_samples_;
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
  max_ = count_ == 0 ? other.max_ : std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
}

void LatencyHistogram::reset() noexcept { *this = LatencyHistogram{}; }

double LatencyHistogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th sample (1-based, nearest-rank method).
  const auto rank = static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(q * static_cast<double>(count_))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      const double lo = bucket_lower(i);
      const double hi = bucket_lower(i + 1);
      return std::clamp(std::sqrt(std::max(lo, 0.25) * hi), min_, max_);
    }
  }
  return max_;
}

std::string LatencyHistogram::to_json() const {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "{\"count\": %llu, \"invalid_samples\": %llu, "
                "\"min\": %.3f, \"mean\": %.3f, "
                "\"p50\": %.3f, \"p95\": %.3f, \"p99\": %.3f, "
                "\"max\": %.3f}",
                static_cast<unsigned long long>(count_),
                static_cast<unsigned long long>(invalid_samples_), min(),
                mean(), quantile(0.50), quantile(0.95), quantile(0.99),
                max());
  return buf;
}

}  // namespace oselm::util
