// Debug contract layer — machine-checked invariants for the threaded
// serving stack.
//
// The serving tiers (util::ThreadPool env stepping, rl::AsyncQServer's
// batch thread, rl::RouterQServer's fleet sync) rest on conventions that
// code review alone enforces: "all backend calls happen on the batch
// thread", "P stays symmetric", "ready queues stay bounded". This header
// turns those conventions into contracts that trip loudly in Debug builds
// (and under the sanitizer CI jobs, which build Debug) and compile to
// NOTHING in Release:
//
//   * OSELM_DCHECK / OSELM_DCHECK_EQ / _NE / _LT / _LE / _GT / _GE —
//     invariant checks that print file:line plus the failed expression
//     (comparison forms include both operand values) and abort(). In
//     Release the condition operands are NOT evaluated — the whole macro
//     folds to a dead `sizeof` in an `if (false)` branch, so a DCHECK can
//     never carry side effects into production and never costs a cycle
//     (tests/util/contract_test.cpp pins both properties).
//   * OSELM_DCHECK_FINITE(x) — NaN/Inf guard for accumulating numerics.
//   * util::ThreadAffinity — a debug thread-ownership guard: the owning
//     thread bind()s, call sites assert_here(). Single-writer structures
//     (the TimeLedger, AsyncQServer's backend seam) use assert_or_bind()
//     so ownership is established on first use and explicit release()
//     marks legal handoff points (e.g. AsyncQServer::run_exclusive's
//     inline-after-stop() path).
//
// Contracts are enabled when NDEBUG is unset (the Debug/ASan/TSan CI
// builds). Define OSELM_FORCE_CONTRACTS=1 to keep them in an optimized
// build when chasing a production-only repro.
#pragma once

#include <atomic>
#include <cmath>
#include <sstream>
#include <string>
#include <thread>

#if !defined(OSELM_CONTRACTS_ENABLED)
#if defined(OSELM_FORCE_CONTRACTS) && OSELM_FORCE_CONTRACTS
#define OSELM_CONTRACTS_ENABLED 1
#elif defined(NDEBUG)
#define OSELM_CONTRACTS_ENABLED 0
#else
#define OSELM_CONTRACTS_ENABLED 1
#endif
#endif

namespace oselm::util {
namespace contract_detail {

/// Prints "<file>:<line>: contract failed: <expr><detail>" to stderr and
/// aborts. Out of line so the macro expansion stays small on every call
/// site; [[noreturn]] so DCHECKs in [[nodiscard]]/noexcept paths don't
/// change control-flow warnings.
[[noreturn]] void fail(const char* file, int line, const char* expr,
                       const std::string& detail) noexcept;

/// Stringifies a comparison's operands for the failure message. Streaming
/// covers every operand type the call sites use (integers, doubles,
/// pointers, std::thread::id).
template <typename A, typename B>
std::string describe_operands(const A& a, const B& b) {
  std::ostringstream os;
  os << " (lhs = " << a << ", rhs = " << b << ")";
  return os.str();
}

}  // namespace contract_detail

/// Debug-build thread-ownership guard. All operations are no-ops in
/// Release (the owner slot itself stays, keeping the layout identical
/// across translation units whatever OSELM_FORCE_CONTRACTS does).
///
/// Two usage shapes:
///   * explicit ownership: the owning thread calls bind() once (e.g. the
///     batch thread at the top of its loop); call sites assert_here().
///   * sticky ownership: assert_or_bind() binds on first use and asserts
///     afterwards; release() marks a legal handoff point, after which the
///     next assert_or_bind() re-binds (TimeLedger's single-writer
///     contract, AsyncQServer's inline run_exclusive after stop()).
class ThreadAffinity {
 public:
  /// Binds (or re-binds) ownership to the calling thread.
  void bind() noexcept {
#if OSELM_CONTRACTS_ENABLED
    owner_.store(std::this_thread::get_id(), std::memory_order_release);
#endif
  }

  /// Drops ownership; the next bind()/assert_or_bind() establishes a new
  /// owner. Marks deliberate handoff points so they are greppable.
  void release() noexcept {
#if OSELM_CONTRACTS_ENABLED
    owner_.store(std::thread::id{}, std::memory_order_release);
#endif
  }

  /// Aborts (Debug) unless the calling thread is the bound owner. `what`
  /// names the violated contract in the failure message.
  void assert_here([[maybe_unused]] const char* what) const noexcept {
#if OSELM_CONTRACTS_ENABLED
    const std::thread::id owner = owner_.load(std::memory_order_acquire);
    if (owner != std::this_thread::get_id()) fail_affinity(what, owner);
#endif
  }

  /// Binds when unbound, asserts otherwise — the sticky single-writer
  /// shape. Not atomic as a whole: two threads racing the FIRST use can
  /// both pass, but any steady-state violation trips (and TSan catches
  /// the race itself).
  void assert_or_bind([[maybe_unused]] const char* what) noexcept {
#if OSELM_CONTRACTS_ENABLED
    const std::thread::id owner = owner_.load(std::memory_order_acquire);
    if (owner == std::thread::id{}) {
      owner_.store(std::this_thread::get_id(), std::memory_order_release);
      return;
    }
    if (owner != std::this_thread::get_id()) fail_affinity(what, owner);
#endif
  }

  /// True when some thread holds ownership (Debug; always false in
  /// Release where the contract state is inert).
  [[nodiscard]] bool bound() const noexcept {
#if OSELM_CONTRACTS_ENABLED
    return owner_.load(std::memory_order_acquire) != std::thread::id{};
#else
    return false;
#endif
  }

 private:
  [[noreturn]] static void fail_affinity(const char* what,
                                         std::thread::id owner) noexcept;

  /// Value-initialized id == "no thread". Atomic so bind()/assert_here()
  /// from different threads is itself race-free under TSan.
  std::atomic<std::thread::id> owner_{std::thread::id{}};
};

}  // namespace oselm::util

// ---------------------------------------------------------------------------
// Invariant macros
// ---------------------------------------------------------------------------
//
// Release expansion: the operands sit inside an unevaluated sizeof in a
// dead branch — they are type-checked (so a DCHECK can't rot silently)
// but never executed and fold away entirely.

#if OSELM_CONTRACTS_ENABLED

#define OSELM_DCHECK(cond)                                                \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::oselm::util::contract_detail::fail(__FILE__, __LINE__, #cond,     \
                                           std::string{});                \
    }                                                                     \
  } while (false)

#define OSELM_DCHECK_OP_(op, a, b)                                        \
  do {                                                                    \
    const auto& oselm_dcheck_a_ = (a);                                    \
    const auto& oselm_dcheck_b_ = (b);                                    \
    if (!(oselm_dcheck_a_ op oselm_dcheck_b_)) {                          \
      ::oselm::util::contract_detail::fail(                               \
          __FILE__, __LINE__, #a " " #op " " #b,                          \
          ::oselm::util::contract_detail::describe_operands(              \
              oselm_dcheck_a_, oselm_dcheck_b_));                         \
    }                                                                     \
  } while (false)

#define OSELM_DCHECK_FINITE(x)                                            \
  do {                                                                    \
    const double oselm_dcheck_v_ = static_cast<double>(x);                \
    if (!std::isfinite(oselm_dcheck_v_)) {                                \
      ::oselm::util::contract_detail::fail(                               \
          __FILE__, __LINE__, #x " is finite",                            \
          ::oselm::util::contract_detail::describe_operands(              \
              oselm_dcheck_v_, 0.0));                                     \
    }                                                                     \
  } while (false)

#else  // !OSELM_CONTRACTS_ENABLED

// `sizeof` keeps the operands ODR-used (no -Wunused-* fallout for
// variables that only feed contracts) without evaluating them.
#define OSELM_DCHECK(cond)                                                \
  do {                                                                    \
    if (false) {                                                          \
      static_cast<void>(sizeof((cond) ? 1 : 0));                          \
    }                                                                     \
  } while (false)

#define OSELM_DCHECK_OP_(op, a, b)                                        \
  do {                                                                    \
    if (false) {                                                          \
      static_cast<void>(sizeof(((a)op(b)) ? 1 : 0));                      \
    }                                                                     \
  } while (false)

#define OSELM_DCHECK_FINITE(x)                                            \
  do {                                                                    \
    if (false) {                                                          \
      static_cast<void>(sizeof(static_cast<double>(x)));                  \
    }                                                                     \
  } while (false)

#endif  // OSELM_CONTRACTS_ENABLED

#define OSELM_DCHECK_EQ(a, b) OSELM_DCHECK_OP_(==, a, b)
#define OSELM_DCHECK_NE(a, b) OSELM_DCHECK_OP_(!=, a, b)
#define OSELM_DCHECK_LT(a, b) OSELM_DCHECK_OP_(<, a, b)
#define OSELM_DCHECK_LE(a, b) OSELM_DCHECK_OP_(<=, a, b)
#define OSELM_DCHECK_GT(a, b) OSELM_DCHECK_OP_(>, a, b)
#define OSELM_DCHECK_GE(a, b) OSELM_DCHECK_OP_(>=, a, b)
