// Huber loss (Eq. 14-15): quadratic inside |x - y| < 1, linear outside.
// Used by the DQN baseline; mean-reduced over the batch like PyTorch's
// SmoothL1Loss, with the 1/n factor folded into the returned gradient.
#pragma once

#include "linalg/matrix.hpp"

namespace oselm::nn {

struct HuberResult {
  double loss = 0.0;
  linalg::MatD grad;  ///< dLoss/dPred, same shape as the predictions
};

/// Scalar Huber term z_i (Eq. 15) for a single residual.
double huber_term(double prediction, double target) noexcept;

/// Mean-reduced Huber loss over equally shaped matrices.
HuberResult huber_loss_mean(const linalg::MatD& predictions,
                            const linalg::MatD& targets);

}  // namespace oselm::nn
