// Uniform experience-replay buffer (Lin 1993; §2.4). The DQN baseline
// samples uniformly at random; this is exactly the large buffer the paper
// argues is infeasible on the edge device (motivating §3.2's random update).
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"
#include "util/rng.hpp"

namespace oselm::nn {

/// One (s, a, r, s', d) experience tuple.
struct Transition {
  linalg::VecD state;
  std::size_t action = 0;
  double reward = 0.0;
  linalg::VecD next_state;
  bool done = false;
};

class ReplayBuffer {
 public:
  explicit ReplayBuffer(std::size_t capacity);

  /// Appends a transition, evicting the oldest once at capacity.
  void push(Transition transition);

  /// Samples `count` transitions uniformly with replacement.
  [[nodiscard]] std::vector<Transition> sample(std::size_t count,
                                               util::Rng& rng) const;

  [[nodiscard]] std::size_t size() const noexcept { return storage_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool empty() const noexcept { return storage_.empty(); }

  /// Oldest-first access for deterministic iteration in tests.
  [[nodiscard]] const Transition& at(std::size_t logical_index) const;

  void clear() noexcept;

 private:
  std::size_t capacity_;
  std::vector<Transition> storage_;
  std::size_t next_ = 0;  ///< ring-buffer write cursor once full
};

}  // namespace oselm::nn
