// Three-layer MLP (input -> ReLU hidden -> linear output) with manual
// backprop — the "three-layer DQN" baseline of §4.1, built from scratch.
#pragma once

#include "linalg/matrix.hpp"
#include "util/rng.hpp"

namespace oselm::nn {

struct MlpConfig {
  std::size_t input_dim = 0;
  std::size_t hidden_units = 0;
  std::size_t output_dim = 0;

  void validate() const;  ///< throws std::invalid_argument on bad values
};

/// Gradients with the same shapes as the parameters.
struct MlpGradients {
  linalg::MatD w1;  ///< input_dim x hidden
  linalg::VecD b1;  ///< hidden
  linalg::MatD w2;  ///< hidden x output
  linalg::VecD b2;  ///< output

  void scale(double factor) noexcept;
};

/// Forward-pass cache needed by backward().
struct MlpCache {
  linalg::MatD x;       ///< batch inputs (k x n)
  linalg::MatD h_pre;   ///< pre-activation hidden (k x N)
  linalg::MatD h;       ///< post-ReLU hidden (k x N)
  linalg::MatD out;     ///< outputs (k x m)
};

class Mlp {
 public:
  Mlp(MlpConfig config, util::Rng& rng);

  /// Re-randomizes all parameters (PyTorch nn.Linear default init:
  /// U(-1/sqrt(fan_in), 1/sqrt(fan_in)) for weights and biases).
  void reinitialize(util::Rng& rng);

  /// Single-sample forward pass (Q-values for action selection).
  [[nodiscard]] linalg::VecD forward(const linalg::VecD& x) const;

  /// Batch forward pass without caching (target-network evaluation).
  [[nodiscard]] linalg::MatD forward_batch(const linalg::MatD& x) const;

  /// Batch forward pass retaining the activations needed for backward().
  linalg::MatD forward_cached(const linalg::MatD& x, MlpCache& cache) const;

  /// Backprop given dLoss/dOut (same shape as cache.out); pure chain rule,
  /// so a mean-reduced loss must fold its 1/batch factor into dLoss/dOut
  /// (huber_loss_mean does exactly that).
  [[nodiscard]] MlpGradients backward(const MlpCache& cache,
                                      const linalg::MatD& dloss_dout) const;

  /// Copies parameters from another network (fixed-target sync).
  void copy_parameters_from(const Mlp& other);

  [[nodiscard]] const MlpConfig& config() const noexcept { return config_; }
  [[nodiscard]] const linalg::MatD& w1() const noexcept { return w1_; }
  [[nodiscard]] const linalg::VecD& b1() const noexcept { return b1_; }
  [[nodiscard]] const linalg::MatD& w2() const noexcept { return w2_; }
  [[nodiscard]] const linalg::VecD& b2() const noexcept { return b2_; }

  linalg::MatD& mutable_w1() noexcept { return w1_; }
  linalg::VecD& mutable_b1() noexcept { return b1_; }
  linalg::MatD& mutable_w2() noexcept { return w2_; }
  linalg::VecD& mutable_b2() noexcept { return b2_; }

  /// Total trainable parameter count.
  [[nodiscard]] std::size_t parameter_count() const noexcept;

 private:
  MlpConfig config_;
  linalg::MatD w1_;
  linalg::VecD b1_;
  linalg::MatD w2_;
  linalg::VecD b2_;
};

}  // namespace oselm::nn
