// Adam optimizer (Kingma & Ba 2015) — the paper trains its DQN baseline
// with Adam at learning rate 0.01 (§4.1).
#pragma once

#include "nn/mlp.hpp"

namespace oselm::nn {

struct AdamConfig {
  double learning_rate = 0.01;  ///< paper's setting (§4.1)
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
};

/// Adam state and update for every Mlp parameter tensor.
class AdamOptimizer {
 public:
  AdamOptimizer(AdamConfig config, const MlpConfig& shapes);

  /// Applies one Adam step to `net` in place using `grads`.
  void step(Mlp& net, const MlpGradients& grads);

  /// Resets moments and the step counter (used after a weight reset).
  void reset();

  [[nodiscard]] const AdamConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t steps_taken() const noexcept { return t_; }

 private:
  /// Element-wise Adam over a flat buffer with per-buffer moment storage.
  void update_buffer(double* param, const double* grad, double* m, double* v,
                     std::size_t count, double bias1, double bias2) const;

  AdamConfig config_;
  MlpConfig shapes_;
  std::size_t t_ = 0;
  // First (m) and second (v) moments, one pair per parameter tensor.
  linalg::VecD m_w1_, v_w1_, m_b1_, v_b1_, m_w2_, v_w2_, m_b2_, v_b2_;
};

}  // namespace oselm::nn
