#include "nn/replay_buffer.hpp"

#include <stdexcept>

namespace oselm::nn {

ReplayBuffer::ReplayBuffer(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("ReplayBuffer: capacity == 0");
  }
  storage_.reserve(capacity);
}

void ReplayBuffer::push(Transition transition) {
  if (storage_.size() < capacity_) {
    storage_.push_back(std::move(transition));
    return;
  }
  storage_[next_] = std::move(transition);
  next_ = (next_ + 1) % capacity_;
}

std::vector<Transition> ReplayBuffer::sample(std::size_t count,
                                             util::Rng& rng) const {
  if (storage_.empty()) {
    throw std::logic_error("ReplayBuffer::sample: buffer empty");
  }
  std::vector<Transition> batch;
  batch.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    batch.push_back(storage_[rng.uniform_index(storage_.size())]);
  }
  return batch;
}

const Transition& ReplayBuffer::at(std::size_t logical_index) const {
  if (logical_index >= storage_.size()) {
    throw std::out_of_range("ReplayBuffer::at: index out of range");
  }
  if (storage_.size() < capacity_) return storage_[logical_index];
  return storage_[(next_ + logical_index) % capacity_];
}

void ReplayBuffer::clear() noexcept {
  storage_.clear();
  next_ = 0;
}

}  // namespace oselm::nn
