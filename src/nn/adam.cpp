#include "nn/adam.hpp"

#include <cmath>
#include <stdexcept>

namespace oselm::nn {

AdamOptimizer::AdamOptimizer(AdamConfig config, const MlpConfig& shapes)
    : config_(config), shapes_(shapes) {
  shapes_.validate();
  const std::size_t w1 = shapes_.input_dim * shapes_.hidden_units;
  const std::size_t w2 = shapes_.hidden_units * shapes_.output_dim;
  m_w1_.assign(w1, 0.0);
  v_w1_.assign(w1, 0.0);
  m_b1_.assign(shapes_.hidden_units, 0.0);
  v_b1_.assign(shapes_.hidden_units, 0.0);
  m_w2_.assign(w2, 0.0);
  v_w2_.assign(w2, 0.0);
  m_b2_.assign(shapes_.output_dim, 0.0);
  v_b2_.assign(shapes_.output_dim, 0.0);
}

void AdamOptimizer::reset() {
  t_ = 0;
  for (auto* buf : {&m_w1_, &v_w1_, &m_b1_, &v_b1_, &m_w2_, &v_w2_, &m_b2_,
                    &v_b2_}) {
    buf->assign(buf->size(), 0.0);
  }
}

void AdamOptimizer::update_buffer(double* param, const double* grad,
                                  double* m, double* v, std::size_t count,
                                  double bias1, double bias2) const {
  for (std::size_t i = 0; i < count; ++i) {
    m[i] = config_.beta1 * m[i] + (1.0 - config_.beta1) * grad[i];
    v[i] = config_.beta2 * v[i] + (1.0 - config_.beta2) * grad[i] * grad[i];
    const double m_hat = m[i] / bias1;
    const double v_hat = v[i] / bias2;
    param[i] -=
        config_.learning_rate * m_hat / (std::sqrt(v_hat) + config_.epsilon);
  }
}

void AdamOptimizer::step(Mlp& net, const MlpGradients& grads) {
  if (grads.w1.size() != m_w1_.size() || grads.w2.size() != m_w2_.size() ||
      grads.b1.size() != m_b1_.size() || grads.b2.size() != m_b2_.size()) {
    throw std::invalid_argument("AdamOptimizer::step: shape mismatch");
  }
  ++t_;
  const double bias1 =
      1.0 - std::pow(config_.beta1, static_cast<double>(t_));
  const double bias2 =
      1.0 - std::pow(config_.beta2, static_cast<double>(t_));
  update_buffer(net.mutable_w1().data(), grads.w1.data(), m_w1_.data(),
                v_w1_.data(), m_w1_.size(), bias1, bias2);
  update_buffer(net.mutable_b1().data(), grads.b1.data(), m_b1_.data(),
                v_b1_.data(), m_b1_.size(), bias1, bias2);
  update_buffer(net.mutable_w2().data(), grads.w2.data(), m_w2_.data(),
                v_w2_.data(), m_w2_.size(), bias1, bias2);
  update_buffer(net.mutable_b2().data(), grads.b2.data(), m_b2_.data(),
                v_b2_.data(), m_b2_.size(), bias1, bias2);
}

}  // namespace oselm::nn
