#include "nn/mlp.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/ops.hpp"

namespace oselm::nn {

void MlpConfig::validate() const {
  if (input_dim == 0 || hidden_units == 0 || output_dim == 0) {
    throw std::invalid_argument("MlpConfig: zero dimension");
  }
}

void MlpGradients::scale(double factor) noexcept {
  for (std::size_t i = 0; i < w1.size(); ++i) w1.data()[i] *= factor;
  for (auto& v : b1) v *= factor;
  for (std::size_t i = 0; i < w2.size(); ++i) w2.data()[i] *= factor;
  for (auto& v : b2) v *= factor;
}

Mlp::Mlp(MlpConfig config, util::Rng& rng) : config_(config) {
  config_.validate();
  reinitialize(rng);
}

void Mlp::reinitialize(util::Rng& rng) {
  w1_ = linalg::MatD(config_.input_dim, config_.hidden_units);
  b1_ = linalg::VecD(config_.hidden_units);
  w2_ = linalg::MatD(config_.hidden_units, config_.output_dim);
  b2_ = linalg::VecD(config_.output_dim);
  const double bound1 = 1.0 / std::sqrt(static_cast<double>(config_.input_dim));
  const double bound2 =
      1.0 / std::sqrt(static_cast<double>(config_.hidden_units));
  rng.fill_uniform(w1_.storage(), -bound1, bound1);
  rng.fill_uniform(b1_, -bound1, bound1);
  rng.fill_uniform(w2_.storage(), -bound2, bound2);
  rng.fill_uniform(b2_, -bound2, bound2);
}

linalg::VecD Mlp::forward(const linalg::VecD& x) const {
  if (x.size() != config_.input_dim) {
    throw std::invalid_argument("Mlp::forward: input width mismatch");
  }
  linalg::VecD h = linalg::matvec_t(w1_, x);
  for (std::size_t i = 0; i < h.size(); ++i) {
    h[i] += b1_[i];
    if (h[i] < 0.0) h[i] = 0.0;  // ReLU
  }
  linalg::VecD out = linalg::matvec_t(w2_, h);
  for (std::size_t i = 0; i < out.size(); ++i) out[i] += b2_[i];
  return out;
}

linalg::MatD Mlp::forward_batch(const linalg::MatD& x) const {
  MlpCache scratch;
  return forward_cached(x, scratch);
}

linalg::MatD Mlp::forward_cached(const linalg::MatD& x,
                                 MlpCache& cache) const {
  if (x.cols() != config_.input_dim) {
    throw std::invalid_argument("Mlp::forward_cached: input width mismatch");
  }
  cache.x = x;
  cache.h_pre = linalg::matmul(x, w1_);
  for (std::size_t r = 0; r < cache.h_pre.rows(); ++r) {
    double* row = cache.h_pre.row_ptr(r);
    for (std::size_t c = 0; c < cache.h_pre.cols(); ++c) row[c] += b1_[c];
  }
  cache.h = cache.h_pre;
  for (std::size_t i = 0; i < cache.h.size(); ++i) {
    if (cache.h.data()[i] < 0.0) cache.h.data()[i] = 0.0;
  }
  cache.out = linalg::matmul(cache.h, w2_);
  for (std::size_t r = 0; r < cache.out.rows(); ++r) {
    double* row = cache.out.row_ptr(r);
    for (std::size_t c = 0; c < cache.out.cols(); ++c) row[c] += b2_[c];
  }
  return cache.out;
}

MlpGradients Mlp::backward(const MlpCache& cache,
                           const linalg::MatD& dloss_dout) const {
  const std::size_t batch = cache.x.rows();
  if (dloss_dout.rows() != batch ||
      dloss_dout.cols() != config_.output_dim) {
    throw std::invalid_argument("Mlp::backward: gradient shape mismatch");
  }

  MlpGradients grads{linalg::MatD(config_.input_dim, config_.hidden_units),
                     linalg::VecD(config_.hidden_units, 0.0),
                     linalg::MatD(config_.hidden_units, config_.output_dim),
                     linalg::VecD(config_.output_dim, 0.0)};

  // dW2 = h^T dOut;  db2 = column sums of dOut.
  grads.w2 = linalg::matmul_at_b(cache.h, dloss_dout);
  for (std::size_t r = 0; r < batch; ++r) {
    const double* row = dloss_dout.row_ptr(r);
    for (std::size_t c = 0; c < config_.output_dim; ++c) grads.b2[c] += row[c];
  }

  // dH = dOut W2^T, gated by ReLU' (h_pre > 0).
  linalg::MatD dh = linalg::matmul_a_bt(dloss_dout, w2_);
  for (std::size_t i = 0; i < dh.size(); ++i) {
    if (cache.h_pre.data()[i] <= 0.0) dh.data()[i] = 0.0;
  }

  // dW1 = x^T dH;  db1 = column sums of dH.
  grads.w1 = linalg::matmul_at_b(cache.x, dh);
  for (std::size_t r = 0; r < batch; ++r) {
    const double* row = dh.row_ptr(r);
    for (std::size_t c = 0; c < config_.hidden_units; ++c) {
      grads.b1[c] += row[c];
    }
  }

  return grads;
}

void Mlp::copy_parameters_from(const Mlp& other) {
  if (other.config_.input_dim != config_.input_dim ||
      other.config_.hidden_units != config_.hidden_units ||
      other.config_.output_dim != config_.output_dim) {
    throw std::invalid_argument("Mlp::copy_parameters_from: shape mismatch");
  }
  w1_ = other.w1_;
  b1_ = other.b1_;
  w2_ = other.w2_;
  b2_ = other.b2_;
}

std::size_t Mlp::parameter_count() const noexcept {
  return w1_.size() + b1_.size() + w2_.size() + b2_.size();
}

}  // namespace oselm::nn
