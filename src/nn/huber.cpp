#include "nn/huber.hpp"

#include <cmath>
#include <stdexcept>

namespace oselm::nn {

double huber_term(double prediction, double target) noexcept {
  const double diff = prediction - target;
  const double abs_diff = std::abs(diff);
  if (abs_diff < 1.0) return 0.5 * diff * diff;
  return abs_diff - 0.5;
}

HuberResult huber_loss_mean(const linalg::MatD& predictions,
                            const linalg::MatD& targets) {
  if (predictions.rows() != targets.rows() ||
      predictions.cols() != targets.cols()) {
    throw std::invalid_argument("huber_loss_mean: shape mismatch");
  }
  const auto n = static_cast<double>(predictions.size());
  if (predictions.size() == 0) {
    throw std::invalid_argument("huber_loss_mean: empty input");
  }

  HuberResult result;
  result.grad = linalg::MatD(predictions.rows(), predictions.cols());
  double total = 0.0;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    const double diff = predictions.data()[i] - targets.data()[i];
    const double abs_diff = std::abs(diff);
    if (abs_diff < 1.0) {
      total += 0.5 * diff * diff;
      result.grad.data()[i] = diff / n;
    } else {
      total += abs_diff - 0.5;
      result.grad.data()[i] = (diff > 0.0 ? 1.0 : -1.0) / n;
    }
  }
  result.loss = total / n;
  return result;
}

}  // namespace oselm::nn
